#include "core/lazy_index.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "core/posting_list.h"
#include "util/perf_context.h"

namespace leveldbpp {

Status LazyIndex::Open(std::string attribute, DBImpl* primary,
                       const Options& base, const std::string& path,
                       std::unique_ptr<SecondaryIndex>* out) {
  std::unique_ptr<LazyIndex> index(
      new LazyIndex(std::move(attribute), primary));
  Status s =
      index->OpenIndexTable(base, path, PostingListMerger::Instance());
  if (s.ok()) {
    *out = std::move(index);
  }
  return s;
}

Status LazyIndex::OnPut(const Slice& primary_key, const Slice& attr_value,
                        SequenceNumber seq) {
  // Append-only: write a one-entry fragment; no read of the existing list.
  // (The engine merges it with the memtable's current fragment in memory,
  // and compaction merges across levels.)
  std::string fragment;
  PostingList::Serialize({PostingEntry(primary_key.ToString(), seq, false)},
                         &fragment);
  return index_db_->Put(WriteOptions(), attr_value, Slice(fragment));
}

Status LazyIndex::OnDelete(const Slice& primary_key, const Slice& attr_value,
                           SequenceNumber seq) {
  // Append a deletion marker; compaction removes the pair once the marker
  // meets the entry it shadows (and drops the marker at the bottom level).
  std::string fragment;
  PostingList::Serialize({PostingEntry(primary_key.ToString(), seq, true)},
                         &fragment);
  return index_db_->Put(WriteOptions(), attr_value, Slice(fragment));
}

Status LazyIndex::BulkLoad(const std::vector<IndexOp>& entries) {
  // Each touched attribute's COMPLETE posting list becomes one fragment,
  // spliced in as SSTables with no WAL and no per-op overhead. Into an
  // empty table that is just the new batch; into a non-empty one the new
  // entries are merged with every existing fragment of the attribute
  // (deletion markers kept — they still shadow occurrences in fragments
  // below; whole-list tombstones stop the walk and stay in place, still
  // guarding everything older). The merged fragment is forced to level 0,
  // where its fresh file number makes it the NEWEST residence: it must
  // shadow the fragments it merged for the level-by-level scan's early
  // stop to stay sound, and natural ingest placement would instead sink
  // it below them.
  const bool empty_table = index_db_->LastSequence() == 0;
  std::map<std::string, std::vector<PostingEntry>> lists;
  for (const IndexOp& op : entries) {
    lists[op.attr_value].emplace_back(op.primary_key, op.seq, false);
  }
  Status s;
  if (!empty_table) {
    for (auto& [attr_value, list] : lists) {
      std::set<std::string> have;
      for (const PostingEntry& e : list) {
        have.insert(e.primary_key);
      }
      s = index_db_->GetFragments(
          ReadOptions(), Slice(attr_value),
          [&](int /*rank*/, SequenceNumber /*fseq*/, bool frag_deleted,
              const Slice& fragment) {
            if (frag_deleted) return false;  // Tombstone guards the rest
            std::vector<PostingEntry> existing;
            if (PostingList::Parse(fragment, &existing)) {
              for (PostingEntry& e : existing) {
                if (have.insert(e.primary_key).second) {
                  list.push_back(std::move(e));
                }
              }
            }
            return true;
          });
      if (!s.ok()) return s;
    }
  }
  auto it = lists.begin();
  IngestFeed feed = [&](std::string* key, std::string* value) {
    if (it == lists.end()) return false;
    key->assign(it->first);
    std::vector<PostingEntry>& list = it->second;
    std::sort(list.begin(), list.end(),
              [](const PostingEntry& a, const PostingEntry& b) {
                return a.seq > b.seq;
              });
    value->clear();
    PostingList::Serialize(list, value);
    ++it;
    return true;
  };
  return index_db_->IngestExternalFiles(feed, nullptr,
                                        /*force_level0=*/!empty_table);
}

Status LazyIndex::Lookup(const Slice& value, size_t k,
                         std::vector<QueryResult>* results) {
  results->clear();
  // Algorithm 3: walk the fragments newest-level-first; a fragment's
  // entries are all newer than every fragment below it, so the scan stops
  // at the first level boundary where the heap is full.
  TopKCollector heap(k);
  std::set<std::string> seen;  // Shadowing: newer fragments win per key
  // A crash-stale entry (index fragment written ahead of a primary put that
  // never committed) validates at a LOWER primary seq than it stored. Once
  // such a result is admitted, "heap full" no longer proves that older
  // fragments can't displace anything, so the level-boundary shortcut is
  // disabled for the rest of the scan.
  bool stale_admitted = false;
  const bool batched = parallel_reads();
  Status s = index_db_->GetFragments(
      ReadOptions(), value,
      [&](int /*rank*/, SequenceNumber /*fseq*/, bool frag_deleted,
          const Slice& fragment) {
        if (frag_deleted) {
          return false;  // Whole-list tombstone shadows everything older.
        }
        std::vector<PostingEntry> entries;
        if (PostingList::Parse(fragment, &entries)) {
          // Counted at parse time (entries in the lists this query read), so
          // the value is identical at every read_parallelism setting.
          PerfCounterAdd(&PerfContext::posting_entries_scanned,
                         entries.size());
          if (!batched) {
            for (const PostingEntry& e : entries) {
              if (!seen.insert(e.primary_key).second) continue;
              if (e.deleted) continue;  // Marker shadows older occurrences
              if (!heap.WouldAdmit(e.seq)) continue;
              QueryResult r;
              if (FetchAndValidate(Slice(e.primary_key), value, value, e.seq,
                                   &r)) {
                if (r.seq != e.seq) stale_admitted = true;
                heap.Add(std::move(r));
              }
            }
          } else {
            // Parallel path: identical pruning in identical order, but the
            // surviving candidates resolve through chunked MultiGets.
            // WouldAdmit sees the heap as of the last chunk boundary —
            // staler than the sequential interleaving, so it fetches a
            // bounded superset (at most one chunk of extras); Add() applies
            // the exact admission predicate afterwards, in the same entry
            // order, so the final heap is identical.
            const size_t chunk = BatchChunk(k);
            std::vector<std::string> cand;
            std::vector<SequenceNumber> cand_seqs;  // Stored seq per cand
            auto flush = [&]() {
              std::vector<QueryResult> fetched;
              std::vector<char> valid;
              FetchAndValidateBatch(cand, cand_seqs, value, value, &fetched,
                                    &valid);
              for (size_t i = 0; i < cand.size(); i++) {
                if (valid[i]) {
                  if (fetched[i].seq != cand_seqs[i]) stale_admitted = true;
                  heap.Add(std::move(fetched[i]));
                }
              }
              cand.clear();
              cand_seqs.clear();
            };
            for (const PostingEntry& e : entries) {
              if (!seen.insert(e.primary_key).second) continue;
              if (e.deleted) continue;
              if (!heap.WouldAdmit(e.seq)) continue;
              cand.push_back(e.primary_key);
              cand_seqs.push_back(e.seq);
              if (cand.size() >= chunk) flush();
            }
            flush();
          }
        }
        // Stop descending once top-K is complete — unless a crash-stale
        // admission broke the levels-are-older invariant (see above).
        return !heap.Full() || stale_admitted;
      });
  if (!s.ok()) return s;
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

Status LazyIndex::RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                              std::vector<QueryResult>* results) {
  results->clear();
  // Section 4.1.2: the primary-key range iterator is forced to scan LEVEL
  // BY LEVEL (a normal merged iterator would hide lower-level fragments of
  // a key already seen above). Each level contributes the fragments of
  // every secondary key in [lo, hi]; per-key shadowing tracks which
  // (secondary key, primary key) pairs newer levels already decided.
  TopKCollector heap(k);
  // Disables the level-boundary shortcut once a crash-stale entry (stored
  // seq above the validated primary seq) has been admitted; see Lookup.
  bool stale_admitted = false;
  std::set<std::pair<std::string, std::string>> seen;  // (attr val, key)
  // A record updated between two secondary keys both inside [lo, hi] has
  // live-looking entries under each; only one result may be emitted. The
  // validity check resolves to the same current record either way, so the
  // first checked occurrence decides.
  std::set<std::string> checked;
  DBImpl::LevelIterators levels;
  Status s = index_db_->NewLevelIterators(ReadOptions(), &levels);
  if (!s.ok()) return s;

  std::string seek_key;
  AppendInternalKey(&seek_key, ParsedInternalKey(lo, kMaxSequenceNumber,
                                                 kValueTypeForSeek));
  const bool batched = parallel_reads();
  const size_t chunk = BatchChunk(k);
  for (Iterator* it : levels.iters) {
    // Parallel path: candidates surviving this bucket's pruning, validated
    // through chunked MultiGets (see Lookup for why the final heap is
    // identical to the sequential interleaving).
    std::vector<std::string> cand;
    std::vector<SequenceNumber> cand_seqs;  // Stored seq per candidate
    auto flush = [&]() {
      std::vector<QueryResult> fetched;
      std::vector<char> valid;
      FetchAndValidateBatch(cand, cand_seqs, lo, hi, &fetched, &valid);
      for (size_t i = 0; i < cand.size(); i++) {
        if (valid[i]) {
          if (fetched[i].seq != cand_seqs[i]) stale_admitted = true;
          heap.Add(std::move(fetched[i]));
        }
      }
      cand.clear();
      cand_seqs.clear();
    };
    // Within one recency bucket a secondary key may still have several
    // versions (unflushed memtable history); internal ordering puts the
    // newest first, and only it reflects the bucket's fragment.
    std::string prev_attr;
    bool has_prev = false;
    for (it->Seek(Slice(seek_key)); it->Valid(); it->Next()) {
      ParsedInternalKey ikey;
      if (!ParseInternalKey(it->key(), &ikey)) continue;
      if (ikey.user_key.compare(hi) > 0) break;
      if (has_prev && Slice(prev_attr) == ikey.user_key) continue;
      prev_attr.assign(ikey.user_key.data(), ikey.user_key.size());
      has_prev = true;
      if (ikey.type != kTypeValue) {
        // Whole-list tombstone: shadow every pair of this secondary key in
        // older buckets. Modeled by a sentinel primary key "" plus marking
        // all future occurrences via the deleted-set below would be
        // complex; instead record the attr value as fully shadowed.
        seen.emplace(prev_attr, std::string());
        continue;
      }
      if (seen.count(std::make_pair(prev_attr, std::string())) != 0) {
        continue;  // Whole list tombstoned by a newer bucket.
      }
      std::vector<PostingEntry> entries;
      if (!PostingList::Parse(it->value(), &entries)) continue;
      PerfCounterAdd(&PerfContext::posting_entries_scanned, entries.size());
      for (const PostingEntry& e : entries) {
        if (!seen.insert(std::make_pair(prev_attr, e.primary_key)).second) {
          continue;
        }
        if (e.deleted) continue;
        if (!heap.WouldAdmit(e.seq)) continue;
        if (!checked.insert(e.primary_key).second) continue;
        if (batched) {
          cand.push_back(e.primary_key);
          cand_seqs.push_back(e.seq);
          if (cand.size() >= chunk) flush();
          continue;
        }
        QueryResult r;
        if (FetchAndValidate(Slice(e.primary_key), lo, hi, e.seq, &r)) {
          if (r.seq != e.seq) stale_admitted = true;
          heap.Add(std::move(r));
        }
      }
    }
    if (!it->status().ok()) return it->status();
    if (!cand.empty()) flush();
    // Level boundary: lower levels are older — unless a crash-stale
    // admission broke that invariant (see Lookup).
    if (heap.Full() && !stale_admitted) break;
  }
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

}  // namespace leveldbpp
