// LazyIndex (paper Section 4.1.2): stand-alone index table with append-only
// posting updates (Cassandra style). A PUT writes a one-entry fragment and
// nothing else; fragments for the same secondary key scatter across levels
// (at most one per memtable / L0 file / level thanks to the in-memory merge
// and the compaction-time PostingListMerger) and are merged at query time.
//
// LOOKUP reads the fragments level by level, newest first, and can stop as
// soon as the top-K heap fills — the property that makes Lazy the best
// stand-alone index for small top-K in the paper. DELETEs append a deletion
// marker that compaction resolves (Figure 5).

#ifndef LEVELDBPP_CORE_LAZY_INDEX_H_
#define LEVELDBPP_CORE_LAZY_INDEX_H_

#include "core/standalone_index.h"

namespace leveldbpp {

class LazyIndex : public StandAloneIndex {
 public:
  static Status Open(std::string attribute, DBImpl* primary,
                     const Options& base, const std::string& path,
                     std::unique_ptr<SecondaryIndex>* out);

  IndexType type() const override { return IndexType::kLazy; }

  Status OnPut(const Slice& primary_key, const Slice& attr_value,
               SequenceNumber seq) override;
  Status OnDelete(const Slice& primary_key, const Slice& attr_value,
                  SequenceNumber seq) override;
  /// Into an EMPTY index table, builds one complete fragment per attribute
  /// value and splices them in as SSTables. Non-empty tables fall back to
  /// per-op fragments: an ingested file can land BELOW older fragments,
  /// breaking the levels-are-older invariant Lookup's early stop needs.
  Status BulkLoad(const std::vector<IndexOp>& entries) override;
  Status Lookup(const Slice& value, size_t k,
                std::vector<QueryResult>* results) override;
  Status RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                     std::vector<QueryResult>* results) override;

 private:
  using StandAloneIndex::StandAloneIndex;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_LAZY_INDEX_H_
