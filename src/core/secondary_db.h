// SecondaryDB: the LevelDB++ public API. A key-value store over JSON
// documents with secondary-attribute LOOKUP / RANGELOOKUP, parameterized by
// indexing strategy (Table 1's operation set + the paper's five index
// variants).
//
// Layout on disk:
//   <path>/primary            the data table
//   <path>/index_<attr>       one stand-alone index table per attribute
//                             (Lazy / Eager / Composite only)
//
// Each table carries its own Statistics so benches can attribute disk I/O
// and compaction work to the primary table vs. each index table, exactly
// as the paper's Figures 8b, 9c and 13-15 do.

#ifndef LEVELDBPP_CORE_SECONDARY_DB_H_
#define LEVELDBPP_CORE_SECONDARY_DB_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/secondary_index.h"
#include "table/filter_policy.h"

namespace leveldbpp {

struct SecondaryDBOptions {
  /// Base engine options (env, buffer sizes, compression, ...). The
  /// comparator / filter / extractor fields are managed internally.
  Options base;

  /// Which of the five strategies indexes the attributes.
  IndexType index_type = IndexType::kEmbedded;

  /// Secondary attributes to index (e.g. {"UserID", "CreationTime"}).
  std::vector<std::string> indexed_attributes;

  /// Bloom bits/key for primary-key filters (all variants; LevelDB default
  /// is 10).
  int primary_bloom_bits_per_key = 10;

  /// Bloom bits/key for the Embedded index's per-block secondary filters
  /// (the paper uses 20 by default and sweeps 5..30 in Appendix C.1).
  int embedded_bloom_bits_per_key = 20;

  /// When the stand-alone indexes learn about writes (see
  /// core/secondary_index.h). kSync is the paper's behavior and the
  /// default. kDeferredBatch buffers index maintenance and applies it in
  /// FIFO batches (on primary flush, on every query, at the buffer cap);
  /// kTimestampValidated keeps writes synchronous but lets point-LOOKUP
  /// validation trust stored sequence numbers. Both alternatives return
  /// byte-identical query results to kSync; both are rejected at Open when
  /// combined with sync_writes (whose index-first crash ordering needs
  /// synchronous maintenance and can store uncommitted seqs). Ignored by
  /// Embedded / NoIndex.
  IndexMaintenance index_maintenance = IndexMaintenance::kSync;

  /// kDeferredBatch: buffered ops are applied once the buffer reaches this
  /// many entries (besides the flush/query/close triggers).
  size_t deferred_batch_max_ops = 1024;

  /// Crash-consistency mode. Forces Options::sync_writes on the primary
  /// table AND every stand-alone index table (each write fsyncs its WAL
  /// before acknowledging), and flips Put to write index entries BEFORE
  /// the primary record. With that ordering, a crash at any point leaves at
  /// worst a stale index posting — which query-time validation against the
  /// primary already filters — never a missing one; so an acknowledged Put
  /// is always queryable after recovery. Requires a single writer thread
  /// (Put predicts the primary's next sequence number). Default off: the
  /// paper benches measure buffered writes.
  bool sync_writes = false;
};

class SecondaryDB {
 public:
  /// Open (creating if missing) a LevelDB++ store at `path`.
  static Status Open(const SecondaryDBOptions& options,
                     const std::string& path,
                     std::unique_ptr<SecondaryDB>* dbptr);

  SecondaryDB(const SecondaryDB&) = delete;
  SecondaryDB& operator=(const SecondaryDB&) = delete;
  ~SecondaryDB();

  /// Per-call write controls (the subset of WriteOptions the serving layer
  /// needs). Defaults preserve the classic blocking behavior.
  struct WriteControl {
    /// See WriteOptions::no_stall: return Status::Busy instead of parking
    /// on the PRIMARY table's stall ladder. A Busy return means nothing was
    /// applied to the primary; in sync_writes mode the index postings
    /// written first may remain as stale entries — exactly the state a
    /// crash between the two writes leaves, which query-time validation
    /// already filters. Index-table writes themselves keep the blocking
    /// path (postings are small; their ladders clear quickly).
    bool no_stall = false;
  };

  /// PUT(k, v): v must be a JSON object; indexed attributes are extracted
  /// from its top-level fields. Overwrites any existing entry (stale index
  /// entries are filtered at query time, per the paper).
  Status Put(const Slice& key, const Slice& json_value,
             const WriteControl& ctl);
  Status Put(const Slice& key, const Slice& json_value) {
    return Put(key, json_value, WriteControl());
  }

  /// GET(k).
  Status Get(const Slice& key, std::string* value);

  /// DEL(k).
  Status Delete(const Slice& key, const WriteControl& ctl);
  Status Delete(const Slice& key) { return Delete(key, WriteControl()); }

  /// LOOKUP(A, a, K): K most recent records with val(A) == a, newest
  /// first. K == 0 means no limit.
  Status Lookup(const std::string& attribute, const Slice& value, size_t k,
                std::vector<QueryResult>* results);

  /// RANGELOOKUP(A, a, b, K): K most recent records with a <= val(A) <= b.
  Status RangeLookup(const std::string& attribute, const Slice& lo,
                     const Slice& hi, size_t k,
                     std::vector<QueryResult>* results);

  // ---- Snapshot-consistent primary iteration ----
  //
  // Thin forwards to the primary table: a snapshot pins a sequence number
  // (writes/flushes/compactions after it stay invisible), and iterators
  // are bidirectional merged views over memtable + immutables + every
  // level (one pre-merged run when Options::sorted_views has a current
  // view). Release every snapshot before closing the store. The
  // stand-alone index tables are NOT covered: LOOKUP/RANGELOOKUP read
  // "now" by design (the paper's queries have no as-of semantics).
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);
  Iterator* NewIterator(const ReadOptions& options);

  /// Bulk load: stream sorted documents (strictly increasing primary keys,
  /// JSON values) into the primary table via DB::IngestExternalFiles — no
  /// memtable, no WAL — and bring every index along. Embedded/NoIndex need
  /// nothing extra (embedded filters and zone maps are built into the
  /// ingested SSTables); stand-alone variants receive the batch through
  /// SecondaryIndex::BulkLoad, which builds index SSTables directly when
  /// sound and replays OnPut otherwise. Queries afterwards are
  /// byte-identical to having Put every document. Same requirements as
  /// DB::IngestExternalFiles (no concurrent writers).
  Status IngestWithIndexes(const IngestFeed& feed, IngestStats* stats);

  /// Flush + fully compact the primary table and every index table (used
  /// between the build and query phases of Static workloads).
  Status CompactAll();

  /// Drive any pending compactions (no forced flush).
  Status MaybeCompact();

  // ---- Corruption survival ----

  /// Best-effort salvage of a store that no longer opens: runs RepairDB on
  /// the primary table (with the same effective options Open would use, so
  /// rewritten tables regenerate identical filters / zone maps) and drops
  /// the stand-alone index tables — they are derived data. Reopen the store
  /// afterwards and call RebuildIndex() to regenerate them. The store must
  /// not be open while this runs.
  static Status Repair(const SecondaryDBOptions& options,
                       const std::string& path);

  /// Cross-check every index against the primary table: every newest
  /// visible primary record must be reachable through each index that
  /// covers one of its attributes. (Stale postings are normal — query-time
  /// validation filters them — but a MISSING posting silently hides a live
  /// record from query results.) Returns Corruption naming the first
  /// unreachable record. Embedded/NoIndex read the primary data directly
  /// and are trivially consistent.
  Status VerifyIndexConsistency();

  /// Regenerate the stand-alone index tables from a full primary scan: the
  /// old index tables are destroyed, fresh ones opened, and one posting
  /// written per (newest visible record, covered attribute) with the
  /// record's real sequence number — so validation and GetLite behave
  /// exactly as if the postings came from the write path. Counted as
  /// index.rebuild.entries. Embedded/NoIndex: no separate table, no-op.
  Status RebuildIndex();

  /// Clear a transient sticky background error on the primary table and on
  /// every stand-alone index table (see DB::Resume).
  Status Resume();

  /// Store-wide stall state: the primary table's ladder position, with
  /// bg_error widened to cover the stand-alone index tables — a store is
  /// only healthy when every table is, and index writes keep the blocking
  /// path, so a sick index table fails Put/Delete just as loudly as a sick
  /// primary.
  DBImpl::WriteStallState GetWriteStallState();

  // ---- Introspection ----
  DBImpl* primary() { return primary_.get(); }
  SecondaryIndex* index(const std::string& attribute);
  IndexType index_type() const { return options_.index_type; }

  Statistics* primary_statistics() {
    // A caller-supplied Statistics (options.base.statistics) wins, so
    // counters recorded before Open — e.g. Repair's salvage/drop tickers —
    // show up in the reopened store's "leveldbpp.stats".
    return options_.base.statistics != nullptr ? options_.base.statistics
                                               : primary_stats_.get();
  }
  uint64_t PrimarySizeBytes() { return primary_->TotalSizeBytes(); }
  /// Sum of all index tables' sizes (0 for Embedded/NoIndex).
  uint64_t IndexSizeBytes();
  uint64_t TotalSizeBytes() { return PrimarySizeBytes() + IndexSizeBytes(); }

  /// Sum of a ticker over the primary and all index tables.
  uint64_t TotalTicker(Ticker t);

 private:
  friend class DeferredDrainListener;  // Drains on primary-table flush

  SecondaryDB(const SecondaryDBOptions& options);

  bool standalone() const {
    return options_.index_type == IndexType::kLazy ||
           options_.index_type == IndexType::kEager ||
           options_.index_type == IndexType::kComposite;
  }

  /// Open (creating if missing) the index object for one attribute; the
  /// per-type switch shared by Open and RebuildIndex.
  Status OpenIndex(const std::string& attr,
                   std::unique_ptr<SecondaryIndex>* index);

  /// kDeferredBatch: append one op to the buffer; drains inline when the
  /// buffer hits deferred_batch_max_ops.
  Status BufferDeferred(SecondaryIndex* index, const Slice& primary_key,
                        const Slice& attr_value, SequenceNumber seq,
                        bool is_delete);

  /// Apply every buffered op (FIFO per index) through OnPutBatch. Called
  /// before queries / verification / ingest / close and from the primary
  /// table's flush listener; no-op when the buffer is empty or the mode is
  /// not kDeferredBatch. Safe from any thread.
  Status DrainDeferred();

  SecondaryDBOptions options_;
  std::string path_;
  Options index_base_;  // Effective base options the index tables open with
  std::unique_ptr<Statistics> primary_stats_;
  std::unique_ptr<const FilterPolicy> primary_filter_;
  std::unique_ptr<const FilterPolicy> secondary_filter_;
  std::unique_ptr<DBImpl> primary_;
  // Attribute -> index, in declaration order.
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;

  // ---- kDeferredBatch state ----
  struct DeferredOp {
    SecondaryIndex* index;
    IndexOp op;
  };
  // Lock order: deferred_apply_mu_ BEFORE deferred_mu_. A drain takes the
  // apply lock first and THEN swaps the buffer out, so two racing drains
  // apply their batches in the order the ops were buffered (the second
  // drain cannot swap — let alone apply — newer ops until the first
  // finished applying older ones).
  std::mutex deferred_apply_mu_;
  std::mutex deferred_mu_;
  std::vector<DeferredOp> deferred_;  // guarded by deferred_mu_
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_SECONDARY_DB_H_
