#include "core/embedded_index.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "core/document.h"
#include "env/thread_pool.h"
#include "util/perf_context.h"

namespace leveldbpp {

namespace {

// A match that is the FIRST entry of its block may have a newer same-file
// version ending the previous block (versions sort newest-first and can
// straddle a block boundary). One same-table probe resolves it.
bool SupersededWithinTable(Table* table, const ReadOptions& read_options,
                           const ParsedInternalKey& ikey) {
  LookupKey lk(ikey.user_key, kMaxSequenceNumber);
  struct Ctx {
    Slice user_key;
    SequenceNumber newest = 0;
  } ctx;
  ctx.user_key = ikey.user_key;
  table->InternalGet(read_options, lk.internal_key(), &ctx,
                     [](void* arg, const Slice& k, const Slice&) {
                       Ctx* c = reinterpret_cast<Ctx*>(arg);
                       ParsedInternalKey p;
                       if (ParseInternalKey(k, &p) &&
                           p.user_key == c->user_key) {
                         c->newest = p.sequence;
                       }
                     });
  return ctx.newest > ikey.sequence;
}

}  // namespace

Status EmbeddedIndex::Scan(const Slice& lo, const Slice& hi, size_t k,
                           std::vector<QueryResult>* results) {
  results->clear();
  TopKCollector heap(k);
  const JsonAttributeExtractor* extractor = JsonAttributeExtractor::Instance();
  // Records admitted to the heap, so one record matched in several recency
  // buckets (e.g. valid version + stale older copies) is counted once. The
  // GetLite validity check already rejects superseded copies; the set only
  // guards against double-admitting the SAME (key, seq) from overlapping
  // sources.
  std::set<std::pair<std::string, SequenceNumber>> admitted;
  std::string attr_scratch;

  auto consider = [&](const Slice& user_key, SequenceNumber seq,
                      const Slice& record, int level, uint64_t file) {
    if (!heap.WouldAdmit(seq)) return;
    if (!extractor->Extract(record, attribute_, &attr_scratch)) return;
    Slice av(attr_scratch);
    if (av.compare(lo) < 0 || av.compare(hi) > 0) return;
    auto id = std::make_pair(user_key.ToString(), seq);
    if (admitted.count(id) != 0) return;
    // Validity: is this record still the newest version of its key? This is
    // the paper's GetLite — only residences NEWER than the record's own are
    // probed, via in-memory metadata; confirm reads happen only on bloom
    // false positives.
    if (!primary_->IsNewestVersion(user_key, seq, level, file)) return;
    QueryResult r;
    r.primary_key = id.first;
    r.seq = seq;
    r.value = record.ToString();
    if (heap.Add(std::move(r))) {
      admitted.insert(std::move(id));
    }
  };

  // 1. Memtable(s): in-memory attribute tree over unflushed records.
  primary_->MemTableSecondaryLookup(
      attribute_, lo, hi,
      [&](const Slice& user_key, SequenceNumber seq, const Slice& record) {
        PerfCounterAdd(&PerfContext::candidate_records_scanned, 1);
        consider(user_key, seq, record, /*level=*/-1, /*file=*/0);
      });

  // Memtable data is strictly newer than anything on disk; if the heap is
  // already full the disk scan cannot displace anything.
  if (heap.Full()) {
    *results = heap.TakeSortedNewestFirst();
    return Status::OK();
  }

  // 2. Disk levels, newest first; candidate blocks are chosen by the
  //    embedded per-block bloom filters (point lookups) and zone maps.
  ReadOptions read_options;
  std::string prev_user_key;  // In-block adjacency dedup (versions adjacent)
  Status scan_status;
  // A block that fails its checksum decodes to an error iterator (never
  // Valid), so the scan naturally skips it — the quarantine fallthrough. In
  // paranoid mode the error must surface instead (first one wins).
  const bool paranoid = primary_->options().paranoid_checks;
  Status block_error;
  if (!parallel_reads()) {
    scan_status = primary_->EmbeddedScan(
        read_options, attribute_, lo, hi,
        [&](Table* table, size_t block, int level, uint64_t file) {
          std::unique_ptr<Iterator> it(
              table->NewDataBlockIterator(read_options, block));
          prev_user_key.clear();
          bool first_entry = true;
          for (it->SeekToFirst(); it->Valid(); it->Next()) {
            ParsedInternalKey ikey;
            if (!ParseInternalKey(it->key(), &ikey)) continue;
            // Counted before any pruning, so the value depends only on the
            // candidate blocks (identical at every read_parallelism).
            PerfCounterAdd(&PerfContext::candidate_records_scanned, 1);
            // Versions of one user key sort adjacent, newest first; only
            // the first can be the live version.
            if (!prev_user_key.empty() &&
                Slice(prev_user_key) == ikey.user_key) {
              first_entry = false;
              continue;
            }
            prev_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
            if (ikey.type == kTypeValue) {
              // Edge case: if the match is the FIRST entry of its block, a
              // newer same-file version may end the previous block (versions
              // sort newest-first and can straddle a block boundary). One
              // same-table probe resolves it.
              bool superseded =
                  first_entry && block > 0 &&
                  SupersededWithinTable(table, read_options, ikey);
              if (!superseded) {
                consider(ikey.user_key, ikey.sequence, it->value(), level,
                         file);
              }
            }
            first_entry = false;
          }
          if (paranoid && block_error.ok() && !it->status().ok()) {
            block_error = it->status();
          }
        },
        [&](SequenceNumber remaining_max) {
          // Level boundary: records within a level are not time-ordered, so
          // termination is only checked here (Algorithm 5) — and only once
          // no unscanned file can hold a record newer than the heap's
          // oldest retained match (files spliced in by ingest carry newer
          // sequences than shallower pre-existing data).
          return !heap.Full() || heap.WouldAdmit(remaining_max);
        });
  } else {
    // Parallel path: within one recency bucket the candidate blocks are
    // read and pre-filtered concurrently. Everything a task computes —
    // block decode, supersede probe, attribute extract + range check, and
    // the GetLite validity check — is a pure function of the pinned,
    // immutable store state, so it can run on any thread. The stateful
    // admission (WouldAdmit, admitted-set dedup, heap Add) is replayed on
    // the calling thread in the exact (file, block, entry) order the
    // sequential scan uses, making the final heap byte-identical.
    struct Match {
      std::string user_key;
      SequenceNumber seq;
      std::string record;
    };
    const int parallelism = primary_->options().read_parallelism;
    scan_status = primary_->EmbeddedScanBuckets(
        read_options, attribute_, lo, hi,
        [&](const std::vector<DBImpl::BlockCandidate>& cands) {
          // The bucket is processed in WAVES of a few blocks per executor:
          // the merge below runs between waves, so the heap the tasks
          // consult for pruning is at most one wave stale. One big
          // ParallelRun over the whole bucket would see an empty heap and
          // extract/validate every in-range entry the sequential scan
          // prunes.
          const size_t wave_size = static_cast<size_t>(parallelism) * 4;
          for (size_t wave = 0; wave < cands.size(); wave += wave_size) {
          const size_t wave_end = std::min(cands.size(), wave + wave_size);
          std::vector<std::vector<Match>> block_matches(wave_end - wave);
          std::vector<Status> block_status(wave_end - wave);
          // Coarse tasks (a contiguous run of blocks each) so the pool
          // dispatch overhead amortizes over several block reads.
          const size_t ntasks = std::min(
              wave_end - wave, static_cast<size_t>(parallelism) * 2);
          std::vector<std::function<void()>> tasks;
          tasks.reserve(ntasks);
          for (size_t t = 0; t < ntasks; t++) {
            const size_t begin = wave + (wave_end - wave) * t / ntasks;
            const size_t end = wave + (wave_end - wave) * (t + 1) / ntasks;
            tasks.push_back([this, &cands, &block_matches, &block_status,
                             paranoid, wave, begin, end, &read_options, &lo,
                             &hi, &heap, extractor]() {
              std::string prev_key;
              std::string attr_scratch;
              for (size_t ci = begin; ci < end; ci++) {
                const DBImpl::BlockCandidate& c = cands[ci];
                std::vector<Match>* out = &block_matches[ci - wave];
                std::unique_ptr<Iterator> it(
                    c.table->NewDataBlockIterator(read_options, c.block));
                prev_key.clear();
                bool first_entry = true;
                for (it->SeekToFirst(); it->Valid(); it->Next()) {
                  ParsedInternalKey ikey;
                  if (!ParseInternalKey(it->key(), &ikey)) continue;
                  // Same pre-pruning point as the sequential scan, so the
                  // per-query total matches it exactly.
                  PerfCounterAdd(&PerfContext::candidate_records_scanned, 1);
                  if (!prev_key.empty() &&
                      Slice(prev_key) == ikey.user_key) {
                    first_entry = false;
                    continue;
                  }
                  prev_key.assign(ikey.user_key.data(),
                                  ikey.user_key.size());
                  const bool was_first = first_entry;
                  first_entry = false;
                  if (ikey.type != kTypeValue) continue;
                  // Safe cross-thread pruning: the heap is frozen while
                  // ParallelRun is in flight (the merge below runs after),
                  // so this reads the wave-start state — a conservative
                  // subset of the pruning the sequential interleaving
                  // applies, skipped entries are skipped by both.
                  if (!heap.WouldAdmit(ikey.sequence)) continue;
                  bool superseded =
                      was_first && c.block > 0 &&
                      SupersededWithinTable(c.table, read_options, ikey);
                  if (!superseded &&
                      extractor->Extract(it->value(), attribute_,
                                         &attr_scratch)) {
                    Slice av(attr_scratch);
                    if (av.compare(lo) >= 0 && av.compare(hi) <= 0 &&
                        primary_->IsNewestVersion(ikey.user_key,
                                                  ikey.sequence, c.level,
                                                  c.file)) {
                      out->push_back(Match{ikey.user_key.ToString(),
                                           ikey.sequence,
                                           it->value().ToString()});
                    }
                  }
                }
                if (paranoid && !it->status().ok()) {
                  block_status[ci - wave] = it->status();
                }
              }
            });
          }
          ParallelRun(&tasks, parallelism, primary_->statistics());
          for (const Status& bs : block_status) {
            if (block_error.ok() && !bs.ok()) block_error = bs;
          }
          for (std::vector<Match>& matches : block_matches) {
            for (Match& m : matches) {
              if (!heap.WouldAdmit(m.seq)) continue;
              auto id = std::make_pair(std::move(m.user_key), m.seq);
              if (admitted.count(id) != 0) continue;
              QueryResult r;
              r.primary_key = id.first;
              r.seq = m.seq;
              r.value = std::move(m.record);
              if (heap.Add(std::move(r))) {
                admitted.insert(std::move(id));
              }
            }
          }
          }  // wave
        },
        [&](SequenceNumber remaining_max) {
          return !heap.Full() || heap.WouldAdmit(remaining_max);
        });
  }

  if (!scan_status.ok()) return scan_status;
  if (!block_error.ok()) return block_error;
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

}  // namespace leveldbpp
