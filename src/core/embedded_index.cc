#include "core/embedded_index.h"

#include <memory>
#include <set>

#include "core/document.h"

namespace leveldbpp {

Status EmbeddedIndex::Scan(const Slice& lo, const Slice& hi, size_t k,
                           std::vector<QueryResult>* results) {
  results->clear();
  TopKCollector heap(k);
  const JsonAttributeExtractor* extractor = JsonAttributeExtractor::Instance();
  // Records admitted to the heap, so one record matched in several recency
  // buckets (e.g. valid version + stale older copies) is counted once. The
  // GetLite validity check already rejects superseded copies; the set only
  // guards against double-admitting the SAME (key, seq) from overlapping
  // sources.
  std::set<std::pair<std::string, SequenceNumber>> admitted;
  std::string attr_scratch;

  auto consider = [&](const Slice& user_key, SequenceNumber seq,
                      const Slice& record, int level, uint64_t file) {
    if (!heap.WouldAdmit(seq)) return;
    if (!extractor->Extract(record, attribute_, &attr_scratch)) return;
    Slice av(attr_scratch);
    if (av.compare(lo) < 0 || av.compare(hi) > 0) return;
    auto id = std::make_pair(user_key.ToString(), seq);
    if (admitted.count(id) != 0) return;
    // Validity: is this record still the newest version of its key? This is
    // the paper's GetLite — only residences NEWER than the record's own are
    // probed, via in-memory metadata; confirm reads happen only on bloom
    // false positives.
    if (!primary_->IsNewestVersion(user_key, seq, level, file)) return;
    QueryResult r;
    r.primary_key = id.first;
    r.seq = seq;
    r.value = record.ToString();
    if (heap.Add(std::move(r))) {
      admitted.insert(std::move(id));
    }
  };

  // 1. Memtable(s): in-memory attribute tree over unflushed records.
  primary_->MemTableSecondaryLookup(
      attribute_, lo, hi,
      [&](const Slice& user_key, SequenceNumber seq, const Slice& record) {
        consider(user_key, seq, record, /*level=*/-1, /*file=*/0);
      });

  // Memtable data is strictly newer than anything on disk; if the heap is
  // already full the disk scan cannot displace anything.
  if (heap.Full()) {
    *results = heap.TakeSortedNewestFirst();
    return Status::OK();
  }

  // 2. Disk levels, newest first; candidate blocks are chosen by the
  //    embedded per-block bloom filters (point lookups) and zone maps.
  ReadOptions read_options;
  std::string prev_user_key;  // In-block adjacency dedup (versions adjacent)
  Status scan_status = primary_->EmbeddedScan(
      read_options, attribute_, lo, hi,
      [&](Table* table, size_t block, int level, uint64_t file) {
        std::unique_ptr<Iterator> it(
            table->NewDataBlockIterator(read_options, block));
        prev_user_key.clear();
        bool first_entry = true;
        for (it->SeekToFirst(); it->Valid(); it->Next()) {
          ParsedInternalKey ikey;
          if (!ParseInternalKey(it->key(), &ikey)) continue;
          // Versions of one user key sort adjacent, newest first; only the
          // first can be the live version.
          if (!prev_user_key.empty() &&
              Slice(prev_user_key) == ikey.user_key) {
            first_entry = false;
            continue;
          }
          prev_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
          if (ikey.type == kTypeValue) {
            // Edge case: if the match is the FIRST entry of its block, a
            // newer same-file version may end the previous block (versions
            // sort newest-first and can straddle a block boundary). One
            // same-table probe resolves it.
            bool superseded = false;
            if (first_entry && block > 0) {
              LookupKey lk(ikey.user_key, kMaxSequenceNumber);
              struct Ctx {
                Slice user_key;
                SequenceNumber newest = 0;
              } ctx;
              ctx.user_key = ikey.user_key;
              table->InternalGet(
                  read_options, lk.internal_key(), &ctx,
                  [](void* arg, const Slice& k, const Slice&) {
                    Ctx* c = reinterpret_cast<Ctx*>(arg);
                    ParsedInternalKey p;
                    if (ParseInternalKey(k, &p) &&
                        p.user_key == c->user_key) {
                      c->newest = p.sequence;
                    }
                  });
              superseded = ctx.newest > ikey.sequence;
            }
            if (!superseded) {
              consider(ikey.user_key, ikey.sequence, it->value(), level,
                       file);
            }
          }
          first_entry = false;
        }
      },
      [&]() {
        // Level boundary: records within a level are not time-ordered, so
        // termination is only checked here (Algorithm 5).
        return !heap.Full();
      });

  if (!scan_status.ok()) return scan_status;
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

}  // namespace leveldbpp
