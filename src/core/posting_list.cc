#include "core/posting_list.h"

#include <algorithm>
#include <set>

#include "json/json.h"

namespace leveldbpp {

void PostingList::Serialize(const std::vector<PostingEntry>& entries,
                            std::string* out) {
  out->clear();
  out->push_back('[');
  bool first = true;
  for (const PostingEntry& e : entries) {
    if (!first) out->push_back(',');
    first = false;
    out->push_back('[');
    json::AppendQuoted(out, Slice(e.primary_key));
    out->push_back(',');
    out->append(std::to_string(e.seq));
    if (e.deleted) {
      out->append(",1");
    }
    out->push_back(']');
  }
  out->push_back(']');
}

bool PostingList::Parse(const Slice& data, std::vector<PostingEntry>* out) {
  out->clear();
  json::Value v;
  if (!json::Parse(data, &v) || !v.is_array()) return false;
  out->reserve(v.as_array().size());
  for (const json::Value& item : v.as_array()) {
    if (!item.is_array()) return false;
    const json::Array& tuple = item.as_array();
    if (tuple.size() < 2 || !tuple[0].is_string() || !tuple[1].is_number()) {
      return false;
    }
    PostingEntry e;
    e.primary_key = tuple[0].as_string();
    e.seq = static_cast<SequenceNumber>(tuple[1].as_int());
    e.deleted = (tuple.size() >= 3 && tuple[2].is_number() &&
                 tuple[2].as_int() != 0);
    out->push_back(std::move(e));
  }
  return true;
}

void PostingList::Merge(
    const std::vector<std::vector<PostingEntry>>& fragments,
    bool drop_deletions, std::vector<PostingEntry>* out) {
  out->clear();
  // Newest fragment first; within a fragment entries are seq-descending, so
  // the FIRST occurrence of a primary key across the concatenation is its
  // newest state... except entries within later fragments can interleave in
  // seq with earlier fragments only if writes raced — with the engine's
  // single-writer design fragment recency order is strict. We still do a
  // full sort afterwards to keep the output canonical.
  std::set<std::string> seen;
  for (const auto& fragment : fragments) {
    for (const PostingEntry& e : fragment) {
      if (seen.insert(e.primary_key).second) {
        out->push_back(e);
      }
    }
  }
  std::sort(out->begin(), out->end(),
            [](const PostingEntry& a, const PostingEntry& b) {
              if (a.seq != b.seq) return a.seq > b.seq;
              return a.primary_key < b.primary_key;
            });
  if (drop_deletions) {
    out->erase(std::remove_if(
                   out->begin(), out->end(),
                   [](const PostingEntry& e) { return e.deleted; }),
               out->end());
  }
}

bool PostingListMerger::Merge(const Slice& key,
                              const std::vector<Slice>& values_newest_first,
                              bool at_bottom, std::string* result) const {
  (void)key;
  std::vector<std::vector<PostingEntry>> fragments;
  fragments.reserve(values_newest_first.size());
  for (const Slice& v : values_newest_first) {
    std::vector<PostingEntry> entries;
    if (!PostingList::Parse(v, &entries)) {
      // Never drop data on a parse failure: keep the raw newest value.
      *result = values_newest_first[0].ToString();
      return true;
    }
    fragments.push_back(std::move(entries));
  }
  std::vector<PostingEntry> merged;
  PostingList::Merge(fragments, /*drop_deletions=*/at_bottom, &merged);
  if (merged.empty() && at_bottom) {
    return false;  // List fully deleted; drop the key.
  }
  PostingList::Serialize(merged, result);
  return true;
}

const PostingListMerger* PostingListMerger::Instance() {
  static PostingListMerger singleton;
  return &singleton;
}

}  // namespace leveldbpp
