#include "core/secondary_index.h"

#include "core/document.h"
#include "util/perf_context.h"

namespace leveldbpp {

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kNoIndex: return "NoIndex";
    case IndexType::kEmbedded: return "Embedded";
    case IndexType::kLazy: return "Lazy";
    case IndexType::kEager: return "Eager";
    case IndexType::kComposite: return "Composite";
  }
  return "Unknown";
}

Status SecondaryIndex::OnPutBatch(const std::vector<IndexOp>& ops) {
  for (const IndexOp& op : ops) {
    Status s = op.is_delete
                   ? OnDelete(Slice(op.primary_key), Slice(op.attr_value),
                              op.seq)
                   : OnPut(Slice(op.primary_key), Slice(op.attr_value),
                           op.seq);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SecondaryIndex::BulkLoad(const std::vector<IndexOp>& entries) {
  for (const IndexOp& op : entries) {
    Status s = OnPut(Slice(op.primary_key), Slice(op.attr_value), op.seq);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

bool SecondaryIndex::FetchAndValidate(const Slice& primary_key,
                                      const Slice& lo, const Slice& hi,
                                      SequenceNumber stored_seq,
                                      QueryResult* out) {
  ScopedPerfTimer timer(&PerfContext::validate_micros);
  PerfCounterAdd(&PerfContext::candidates_validated, 1);
  if (maintenance_ == IndexMaintenance::kTimestampValidated &&
      lo.compare(hi) == 0) {
    // Point-probe fast path: the stored seq is trustworthy (enforced at
    // Open), so a metadata-only recency check replaces the fetch for stale
    // entries, and an accepted entry skips the extract+compare — the
    // newest version AT stored_seq is the very record that produced this
    // posting, so its attribute equals the probed value by construction.
    Statistics* stats = primary_->options().statistics;
    if (stats != nullptr) stats->Record(kTimestampValidations);
    if (!primary_->IsNewestVersion(primary_key, stored_seq)) {
      if (stats != nullptr) stats->Record(kTimestampRejects);
      return false;
    }
    std::string value;
    DBImpl::RecordLocation loc;
    Status s =
        primary_->GetWithMeta(ReadOptions(), primary_key, &value, &loc);
    if (!s.ok()) return false;  // Raced with a delete
    PerfCounterAdd(&PerfContext::candidates_valid, 1);
    out->primary_key = primary_key.ToString();
    out->seq = loc.seq;
    out->value = std::move(value);
    return true;
  }
  std::string value;
  DBImpl::RecordLocation loc;
  Status s = primary_->GetWithMeta(ReadOptions(), primary_key, &value, &loc);
  if (!s.ok()) return false;  // Deleted or missing: stale index entry
  std::string attr_value;
  if (!JsonAttributeExtractor::Instance()->Extract(Slice(value), attribute_,
                                                   &attr_value)) {
    return false;
  }
  Slice av(attr_value);
  if (av.compare(lo) < 0 || av.compare(hi) > 0) {
    return false;  // Updated record no longer carries the queried value
  }
  PerfCounterAdd(&PerfContext::candidates_valid, 1);
  out->primary_key = primary_key.ToString();
  out->seq = loc.seq;
  out->value = std::move(value);
  return true;
}

void SecondaryIndex::FetchAndValidateBatch(
    const std::vector<std::string>& keys,
    const std::vector<SequenceNumber>& stored_seqs, const Slice& lo,
    const Slice& hi, std::vector<QueryResult>* out,
    std::vector<char>* valid) {
  const size_t n = keys.size();
  if (maintenance_ == IndexMaintenance::kTimestampValidated &&
      lo.compare(hi) == 0) {
    // The fast path is a per-key recency probe; run it sequentially.
    out->assign(n, QueryResult());
    valid->assign(n, 0);
    for (size_t i = 0; i < n; i++) {
      if (FetchAndValidate(Slice(keys[i]), lo, hi, stored_seqs[i],
                           &(*out)[i])) {
        (*valid)[i] = 1;
      }
    }
    return;
  }
  out->assign(n, QueryResult());
  valid->assign(n, 0);
  if (n == 0) return;
  ScopedPerfTimer timer(&PerfContext::validate_micros);
  PerfCounterAdd(&PerfContext::candidates_validated, n);
  std::vector<Slice> key_slices(keys.begin(), keys.end());
  std::vector<std::string> values;
  std::vector<DBImpl::RecordLocation> locs;
  std::vector<Status> statuses;
  primary_->MultiGetWithMeta(ReadOptions(), key_slices, &values, &locs,
                             &statuses);
  for (size_t i = 0; i < n; i++) {
    if (!statuses[i].ok()) continue;  // Deleted or missing: stale entry
    std::string attr_value;
    if (!JsonAttributeExtractor::Instance()->Extract(Slice(values[i]),
                                                     attribute_,
                                                     &attr_value)) {
      continue;
    }
    Slice av(attr_value);
    if (av.compare(lo) < 0 || av.compare(hi) > 0) continue;
    (*out)[i].primary_key = keys[i];
    (*out)[i].seq = locs[i].seq;
    (*out)[i].value = std::move(values[i]);
    (*valid)[i] = 1;
    PerfCounterAdd(&PerfContext::candidates_valid, 1);
  }
}

}  // namespace leveldbpp
