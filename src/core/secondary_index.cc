#include "core/secondary_index.h"

#include "core/document.h"

namespace leveldbpp {

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kNoIndex: return "NoIndex";
    case IndexType::kEmbedded: return "Embedded";
    case IndexType::kLazy: return "Lazy";
    case IndexType::kEager: return "Eager";
    case IndexType::kComposite: return "Composite";
  }
  return "Unknown";
}

bool SecondaryIndex::FetchAndValidate(const Slice& primary_key,
                                      const Slice& lo, const Slice& hi,
                                      QueryResult* out) {
  std::string value;
  DBImpl::RecordLocation loc;
  Status s = primary_->GetWithMeta(ReadOptions(), primary_key, &value, &loc);
  if (!s.ok()) return false;  // Deleted or missing: stale index entry
  std::string attr_value;
  if (!JsonAttributeExtractor::Instance()->Extract(Slice(value), attribute_,
                                                   &attr_value)) {
    return false;
  }
  Slice av(attr_value);
  if (av.compare(lo) < 0 || av.compare(hi) > 0) {
    return false;  // Updated record no longer carries the queried value
  }
  out->primary_key = primary_key.ToString();
  out->seq = loc.seq;
  out->value = std::move(value);
  return true;
}

}  // namespace leveldbpp
