#include "core/secondary_index.h"

#include "core/document.h"
#include "util/perf_context.h"

namespace leveldbpp {

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kNoIndex: return "NoIndex";
    case IndexType::kEmbedded: return "Embedded";
    case IndexType::kLazy: return "Lazy";
    case IndexType::kEager: return "Eager";
    case IndexType::kComposite: return "Composite";
  }
  return "Unknown";
}

bool SecondaryIndex::FetchAndValidate(const Slice& primary_key,
                                      const Slice& lo, const Slice& hi,
                                      QueryResult* out) {
  ScopedPerfTimer timer(&PerfContext::validate_micros);
  PerfCounterAdd(&PerfContext::candidates_validated, 1);
  std::string value;
  DBImpl::RecordLocation loc;
  Status s = primary_->GetWithMeta(ReadOptions(), primary_key, &value, &loc);
  if (!s.ok()) return false;  // Deleted or missing: stale index entry
  std::string attr_value;
  if (!JsonAttributeExtractor::Instance()->Extract(Slice(value), attribute_,
                                                   &attr_value)) {
    return false;
  }
  Slice av(attr_value);
  if (av.compare(lo) < 0 || av.compare(hi) > 0) {
    return false;  // Updated record no longer carries the queried value
  }
  PerfCounterAdd(&PerfContext::candidates_valid, 1);
  out->primary_key = primary_key.ToString();
  out->seq = loc.seq;
  out->value = std::move(value);
  return true;
}

void SecondaryIndex::FetchAndValidateBatch(
    const std::vector<std::string>& keys, const Slice& lo, const Slice& hi,
    std::vector<QueryResult>* out, std::vector<char>* valid) {
  const size_t n = keys.size();
  out->assign(n, QueryResult());
  valid->assign(n, 0);
  if (n == 0) return;
  ScopedPerfTimer timer(&PerfContext::validate_micros);
  PerfCounterAdd(&PerfContext::candidates_validated, n);
  std::vector<Slice> key_slices(keys.begin(), keys.end());
  std::vector<std::string> values;
  std::vector<DBImpl::RecordLocation> locs;
  std::vector<Status> statuses;
  primary_->MultiGetWithMeta(ReadOptions(), key_slices, &values, &locs,
                             &statuses);
  for (size_t i = 0; i < n; i++) {
    if (!statuses[i].ok()) continue;  // Deleted or missing: stale entry
    std::string attr_value;
    if (!JsonAttributeExtractor::Instance()->Extract(Slice(values[i]),
                                                     attribute_,
                                                     &attr_value)) {
      continue;
    }
    Slice av(attr_value);
    if (av.compare(lo) < 0 || av.compare(hi) > 0) continue;
    (*out)[i].primary_key = keys[i];
    (*out)[i].seq = locs[i].seq;
    (*out)[i].value = std::move(values[i]);
    (*valid)[i] = 1;
    PerfCounterAdd(&PerfContext::candidates_valid, 1);
  }
}

}  // namespace leveldbpp
