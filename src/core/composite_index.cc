#include "core/composite_index.h"

#include <memory>
#include <set>

#include "util/coding.h"
#include "util/perf_context.h"

namespace leveldbpp {

Status CompositeIndex::Open(std::string attribute, DBImpl* primary,
                            const Options& base, const std::string& path,
                            std::unique_ptr<SecondaryIndex>* out) {
  std::unique_ptr<CompositeIndex> index(
      new CompositeIndex(std::move(attribute), primary));
  Status s = index->OpenIndexTable(base, path, /*merger=*/nullptr);
  if (s.ok()) {
    *out = std::move(index);
  }
  return s;
}

std::string CompositeIndex::MakeCompositeKey(const Slice& attr_value,
                                             const Slice& primary_key) {
  std::string key;
  key.reserve(attr_value.size() + 1 + primary_key.size());
  key.append(attr_value.data(), attr_value.size());
  key.push_back('\0');
  key.append(primary_key.data(), primary_key.size());
  return key;
}

bool CompositeIndex::SplitCompositeKey(const Slice& composite,
                                       Slice* attr_value,
                                       Slice* primary_key) {
  const char* sep = static_cast<const char*>(
      memchr(composite.data(), '\0', composite.size()));
  if (sep == nullptr) return false;
  *attr_value = Slice(composite.data(), sep - composite.data());
  *primary_key =
      Slice(sep + 1, composite.size() - (sep - composite.data()) - 1);
  return true;
}

Status CompositeIndex::OnPut(const Slice& primary_key,
                             const Slice& attr_value, SequenceNumber seq) {
  // The value stores the primary record's sequence number so top-K ordering
  // is available without touching the data table.
  std::string value;
  PutVarint64(&value, seq);
  return index_db_->Put(WriteOptions(),
                        Slice(MakeCompositeKey(attr_value, primary_key)),
                        Slice(value));
}

Status CompositeIndex::OnDelete(const Slice& primary_key,
                                const Slice& attr_value,
                                SequenceNumber /*seq*/) {
  // The paper inserts the composite key with a deletion marker that
  // compaction uses to detect and remove the entry — which is exactly LSM
  // tombstone semantics.
  return index_db_->Delete(WriteOptions(),
                           Slice(MakeCompositeKey(attr_value, primary_key)));
}

Status CompositeIndex::BulkLoad(const std::vector<IndexOp>& entries) {
  // Composite entries are plain KV pairs, so ingestion is sound even into
  // a non-empty table: an ingested entry carries a fresh (newer) sequence
  // and wins over any existing version of the same composite key, which is
  // exactly what a Put would do. Index recency (stored in the VALUE) is
  // what queries sort by, so file placement does not matter.
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(entries.size());
  for (const IndexOp& op : entries) {
    std::string value;
    PutVarint64(&value, op.seq);
    rows.emplace_back(MakeCompositeKey(Slice(op.attr_value),
                                       Slice(op.primary_key)),
                      std::move(value));
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t i = 0;
  IngestFeed feed = [&](std::string* key, std::string* value) {
    if (i >= rows.size()) return false;
    *key = std::move(rows[i].first);
    *value = std::move(rows[i].second);
    i++;
    return true;
  };
  return index_db_->IngestExternalFiles(feed, nullptr);
}

Status CompositeIndex::Lookup(const Slice& value, size_t k,
                              std::vector<QueryResult>* results) {
  return RangeLookup(value, value, k, results);
}

Status CompositeIndex::RangeLookup(const Slice& lo, const Slice& hi,
                                   size_t k,
                                   std::vector<QueryResult>* results) {
  results->clear();
  // Phase 1 — prefix range scan (Algorithms 4/7): the merged iterator
  // surfaces every live composite key exactly once, across ALL levels.
  // There is no early-termination opportunity because entries arrive
  // ordered by key, not time (Section 4.2), so ALL candidates are gathered
  // (cheap: index blocks only, no data-table access).
  struct Candidate {
    uint64_t seq;
    std::string primary_key;
  };
  std::vector<Candidate> candidates;
  std::unique_ptr<Iterator> it(index_db_->NewIterator(ReadOptions()));
  std::string seek_target = lo.ToString();  // attr prefix lower bound
  for (it->Seek(Slice(seek_target)); it->Valid(); it->Next()) {
    Slice attr_value, primary_key;
    if (!SplitCompositeKey(it->key(), &attr_value, &primary_key)) continue;
    if (attr_value.compare(hi) > 0) break;
    if (attr_value.compare(lo) < 0) continue;
    Slice v = it->value();
    uint64_t seq = 0;
    GetVarint64(&v, &seq);
    candidates.push_back({seq, primary_key.ToString()});
  }
  if (!it->status().ok()) return it->status();
  // One composite row is the analogue of one posting entry. Counted after
  // the (always sequential) phase-1 scan, so the value is identical at
  // every read_parallelism setting.
  PerfCounterAdd(&PerfContext::posting_entries_scanned, candidates.size());

  // Phase 2 — validate newest-first: the stored sequence numbers order the
  // candidates by recency, so top-K completes after ~K data-table GETs
  // (plus skips over stale entries), instead of one GET per candidate.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.seq != b.seq) return a.seq > b.seq;
              return a.primary_key < b.primary_key;
            });
  TopKCollector heap(k);
  std::set<std::string> seen;
  if (!parallel_reads()) {
    for (const Candidate& c : candidates) {
      // Stop on the STORED seq bound, not on a full heap: a crash-stale
      // entry (index written ahead of a primary put that never committed)
      // can validate at a lower primary seq than it stored, so a full heap
      // may still be displaced by later candidates — but never by one whose
      // stored seq is at or below the heap floor, since a validated
      // result's seq never exceeds the stored seq that produced it.
      if (!heap.WouldAdmit(c.seq)) break;  // Candidates are seq-descending
      if (!seen.insert(c.primary_key).second) continue;
      QueryResult r;
      if (FetchAndValidate(Slice(c.primary_key), lo, hi, c.seq, &r)) {
        heap.Add(std::move(r));
      }
    }
  } else {
    // Parallel path: validate the seq-descending candidates in chunks, one
    // MultiGet per chunk. A chunk may validate entries past the point where
    // the sequential scan stops; those are older than everything the full
    // heap retains, so Add() rejects them and the final heap is identical.
    const size_t chunk = BatchChunk(k);
    size_t idx = 0;
    // Chunk boundaries stop on the next candidate's STORED seq (see the
    // sequential path: a full heap alone is not a sound cutoff when
    // crash-stale entries validate below their stored seq).
    while (idx < candidates.size() && heap.WouldAdmit(candidates[idx].seq)) {
      std::vector<std::string> cand;
      std::vector<SequenceNumber> cand_seqs;
      while (idx < candidates.size() && cand.size() < chunk) {
        const Candidate& c = candidates[idx++];
        if (!seen.insert(c.primary_key).second) continue;
        cand.push_back(c.primary_key);
        cand_seqs.push_back(c.seq);
      }
      std::vector<QueryResult> fetched;
      std::vector<char> valid;
      FetchAndValidateBatch(cand, cand_seqs, lo, hi, &fetched, &valid);
      for (size_t i = 0; i < cand.size(); i++) {
        if (valid[i]) heap.Add(std::move(fetched[i]));
      }
    }
  }
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

}  // namespace leveldbpp
