// TopKCollector: the min-heap of Algorithm 1 in the paper. Maintains the K
// most recent (highest sequence number) matches; the heap root is the
// OLDEST retained match, so a candidate older than the root of a full heap
// is rejected without any further work (in particular, before the
// per-candidate validity check, which may cost a disk read).

#ifndef LEVELDBPP_CORE_TOPK_H_
#define LEVELDBPP_CORE_TOPK_H_

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "db/dbformat.h"

namespace leveldbpp {

/// One LOOKUP/RANGELOOKUP match.
struct QueryResult {
  std::string primary_key;
  SequenceNumber seq = 0;
  std::string value;  // The full record (JSON document)
};

class TopKCollector {
 public:
  /// k == 0 means "no limit" (collect every match).
  explicit TopKCollector(size_t k) : k_(k) {}

  /// Would a candidate with this sequence number be admitted? Callers use
  /// this to skip expensive validity checks for hopeless candidates.
  bool WouldAdmit(SequenceNumber seq) const {
    if (k_ == 0 || heap_.size() < k_) return true;
    return seq > heap_.top().seq;
  }

  /// True iff K matches have been collected (never true for k == 0).
  bool Full() const { return k_ != 0 && heap_.size() >= k_; }

  size_t Size() const { return heap_.size(); }

  /// Admit a match (Algorithm 1: pop the oldest if the heap is full).
  /// Returns false if the candidate was older than everything retained.
  bool Add(QueryResult result) {
    if (k_ != 0 && heap_.size() >= k_) {
      if (result.seq <= heap_.top().seq) return false;
      heap_.pop();
    }
    heap_.push(std::move(result));
    return true;
  }

  /// Extract results ordered newest-first. Destroys the collector's state.
  std::vector<QueryResult> TakeSortedNewestFirst() {
    std::vector<QueryResult> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  struct OlderFirst {
    bool operator()(const QueryResult& a, const QueryResult& b) const {
      return a.seq > b.seq;  // Min-heap on seq
    }
  };

  size_t k_;
  std::priority_queue<QueryResult, std::vector<QueryResult>, OlderFirst>
      heap_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_TOPK_H_
