// NoIndex: the paper's no-index baseline. LOOKUP/RANGELOOKUP are full
// scans of the primary table — every block is read, every record parsed.

#ifndef LEVELDBPP_CORE_NOINDEX_INDEX_H_
#define LEVELDBPP_CORE_NOINDEX_INDEX_H_

#include "core/secondary_index.h"

namespace leveldbpp {

class NoIndex : public SecondaryIndex {
 public:
  NoIndex(std::string attribute, DBImpl* primary)
      : SecondaryIndex(std::move(attribute), primary) {}

  IndexType type() const override { return IndexType::kNoIndex; }

  Status OnPut(const Slice&, const Slice&, SequenceNumber) override {
    return Status::OK();
  }
  Status OnDelete(const Slice&, const Slice&, SequenceNumber) override {
    return Status::OK();
  }

  Status Lookup(const Slice& value, size_t k,
                std::vector<QueryResult>* results) override {
    return Scan(value, value, k, results);
  }
  Status RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                     std::vector<QueryResult>* results) override {
    return Scan(lo, hi, k, results);
  }

 private:
  Status Scan(const Slice& lo, const Slice& hi, size_t k,
              std::vector<QueryResult>* results);
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_NOINDEX_INDEX_H_
