#include "core/noindex_index.h"

#include <memory>

#include "core/document.h"
#include "util/perf_context.h"

namespace leveldbpp {

Status NoIndex::Scan(const Slice& lo, const Slice& hi, size_t k,
                     std::vector<QueryResult>* results) {
  results->clear();
  TopKCollector heap(k);
  const JsonAttributeExtractor* extractor = JsonAttributeExtractor::Instance();
  std::string attr_scratch;

  // ScanAll exposes only the newest live version of each key, so no
  // validity checks are needed — but every record in the store is visited
  // and parsed, and there is no early termination (matches arrive in key
  // order, not time order).
  Status s = primary_->ScanAll(
      ReadOptions(),
      [&](const Slice& key, SequenceNumber seq, const Slice& record) {
        PerfCounterAdd(&PerfContext::candidate_records_scanned, 1);
        if (extractor->Extract(record, attribute_, &attr_scratch)) {
          Slice av(attr_scratch);
          if (av.compare(lo) >= 0 && av.compare(hi) <= 0) {
            QueryResult r;
            r.primary_key = key.ToString();
            r.seq = seq;
            r.value = record.ToString();
            heap.Add(std::move(r));
          }
        }
        return true;
      });
  if (!s.ok()) return s;
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

}  // namespace leveldbpp
