// Posting lists for the Stand-Alone Lazy and Eager indexes.
//
// A posting list maps one secondary-key value to the primary keys carrying
// it, newest first. Following the paper, lists are serialized as "a single
// JSON array"; each entry carries the primary-table sequence number (the
// paper: "we attach a sequence number to each entry in the postings list on
// every write" — this is what makes top-K by recency possible), plus a
// deletion-marker flag used by the Lazy index ("maintains a deletion marker
// which is used during merge in compaction to remove the deleted entry").
//
// Wire format: [["k4",97],["k1",55],["k9",12,1]]  (trailing 1 = deleted)

#ifndef LEVELDBPP_CORE_POSTING_LIST_H_
#define LEVELDBPP_CORE_POSTING_LIST_H_

#include <string>
#include <vector>

#include "db/dbformat.h"
#include "db/value_merger.h"
#include "util/slice.h"

namespace leveldbpp {

struct PostingEntry {
  std::string primary_key;
  SequenceNumber seq = 0;
  bool deleted = false;

  PostingEntry() = default;
  PostingEntry(std::string k, SequenceNumber s, bool d = false)
      : primary_key(std::move(k)), seq(s), deleted(d) {}
};

class PostingList {
 public:
  /// Serialize `entries` (must be sorted by seq descending).
  static void Serialize(const std::vector<PostingEntry>& entries,
                        std::string* out);

  /// Parse a serialized list. Returns false on malformed input.
  static bool Parse(const Slice& data, std::vector<PostingEntry>* out);

  /// Merge fragments (each internally seq-descending), newest fragment
  /// first, into one seq-descending list with one entry per primary key
  /// (the newest occurrence wins). When `drop_deletions` is true, deletion
  /// markers are elided from the output (safe only when no older fragments
  /// can exist below).
  static void Merge(const std::vector<std::vector<PostingEntry>>& fragments,
                    bool drop_deletions, std::vector<PostingEntry>* out);
};

/// ValueMerger installed on the Lazy index table's DB: merges posting-list
/// fragments during compaction exactly as Cassandra's index compaction does.
class PostingListMerger : public ValueMerger {
 public:
  const char* Name() const override { return "leveldbpp.PostingListMerger"; }

  bool Merge(const Slice& key, const std::vector<Slice>& values_newest_first,
             bool at_bottom, std::string* result) const override;

  /// Process-wide instance.
  static const PostingListMerger* Instance();
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_POSTING_LIST_H_
