#include "core/eager_index.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/posting_list.h"
#include "util/perf_context.h"

namespace leveldbpp {

Status EagerIndex::Open(std::string attribute, DBImpl* primary,
                        const Options& base, const std::string& path,
                        std::unique_ptr<SecondaryIndex>* out) {
  std::unique_ptr<EagerIndex> index(
      new EagerIndex(std::move(attribute), primary));
  Status s = index->OpenIndexTable(base, path, /*merger=*/nullptr);
  if (s.ok()) {
    *out = std::move(index);
  }
  return s;
}

Status EagerIndex::OnPut(const Slice& primary_key, const Slice& attr_value,
                         SequenceNumber seq) {
  // Read-modify-write: fetch the current list, prepend, write back. The
  // write invalidates all older copies in lower levels.
  std::vector<PostingEntry> entries;
  std::string existing;
  Status s = index_db_->Get(ReadOptions(), attr_value, &existing);
  if (s.ok()) {
    PostingList::Parse(Slice(existing), &entries);
  } else if (!s.IsNotFound()) {
    return s;
  }
  // Drop any previous occurrence of the key (an update re-inserting the
  // same attribute value), then splice the new entry into seq-descending
  // position. On the write path the new seq is the store's newest so this
  // is a front insert, but RebuildIndex replays records in KEY order and
  // Lookup's top-k early break relies on the descending invariant.
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const PostingEntry& e) {
                                 return Slice(e.primary_key) == primary_key;
                               }),
                entries.end());
  auto pos = std::find_if(entries.begin(), entries.end(),
                          [&](const PostingEntry& e) { return e.seq < seq; });
  entries.insert(pos, PostingEntry(primary_key.ToString(), seq, false));
  std::string serialized;
  PostingList::Serialize(entries, &serialized);
  return index_db_->Put(WriteOptions(), attr_value, Slice(serialized));
}

Status EagerIndex::OnDelete(const Slice& primary_key, const Slice& attr_value,
                            SequenceNumber /*seq*/) {
  // Same read-update-write process (paper Section 4.1.1); the key is simply
  // removed from the list.
  std::vector<PostingEntry> entries;
  std::string existing;
  Status s = index_db_->Get(ReadOptions(), attr_value, &existing);
  if (s.IsNotFound()) return Status::OK();
  if (!s.ok()) return s;
  PostingList::Parse(Slice(existing), &entries);
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const PostingEntry& e) {
                                 return Slice(e.primary_key) == primary_key;
                               }),
                entries.end());
  if (entries.empty()) {
    return index_db_->Delete(WriteOptions(), attr_value);
  }
  std::string serialized;
  PostingList::Serialize(entries, &serialized);
  return index_db_->Put(WriteOptions(), attr_value, Slice(serialized));
}

Status EagerIndex::OnPutBatch(const std::vector<IndexOp>& ops) {
  // Group by attribute value, preserving each group's FIFO order, then do
  // ONE read-modify-write per distinct value. Sequentially applying a
  // group's ops to the in-memory list before the single write-back yields
  // the same final list as per-op RMWs — this is where kDeferredBatch
  // recovers most of Eager's write amplification.
  std::map<std::string, std::vector<const IndexOp*>> groups;
  for (const IndexOp& op : ops) groups[op.attr_value].push_back(&op);
  for (const auto& [attr_value, group] : groups) {
    std::vector<PostingEntry> entries;
    std::string existing;
    Status s = index_db_->Get(ReadOptions(), Slice(attr_value), &existing);
    if (s.ok()) {
      PostingList::Parse(Slice(existing), &entries);
    } else if (!s.IsNotFound()) {
      return s;
    }
    for (const IndexOp* op : group) {
      entries.erase(
          std::remove_if(entries.begin(), entries.end(),
                         [&](const PostingEntry& e) {
                           return e.primary_key == op->primary_key;
                         }),
          entries.end());
      if (op->is_delete) continue;
      auto pos =
          std::find_if(entries.begin(), entries.end(),
                       [&](const PostingEntry& e) { return e.seq < op->seq; });
      entries.insert(pos, PostingEntry(op->primary_key, op->seq, false));
    }
    if (entries.empty()) {
      s = index_db_->Delete(WriteOptions(), Slice(attr_value));
    } else {
      std::string serialized;
      PostingList::Serialize(entries, &serialized);
      s = index_db_->Put(WriteOptions(), Slice(attr_value),
                         Slice(serialized));
    }
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status EagerIndex::BulkLoad(const std::vector<IndexOp>& entries) {
  if (index_db_->LastSequence() != 0) {
    // Non-empty table: an ingested list would shadow every existing
    // posting for its attribute value. Replay through the RMW path.
    return SecondaryIndex::BulkLoad(entries);
  }
  // Empty table: the batch IS the complete index. Build one seq-descending
  // posting list per attribute value and splice them in as SSTables.
  std::map<std::string, std::vector<PostingEntry>> lists;
  for (const IndexOp& op : entries) {
    lists[op.attr_value].emplace_back(op.primary_key, op.seq, false);
  }
  auto it = lists.begin();
  IngestFeed feed = [&](std::string* key, std::string* value) {
    if (it == lists.end()) return false;
    key->assign(it->first);
    std::vector<PostingEntry>& list = it->second;
    std::sort(list.begin(), list.end(),
              [](const PostingEntry& a, const PostingEntry& b) {
                return a.seq > b.seq;
              });
    value->clear();
    PostingList::Serialize(list, value);
    ++it;
    return true;
  };
  return index_db_->IngestExternalFiles(feed, nullptr);
}

Status EagerIndex::Lookup(const Slice& value, size_t k,
                          std::vector<QueryResult>* results) {
  results->clear();
  // Algorithm 2: one read retrieves the full, time-ordered list.
  std::string list_data;
  Status s = index_db_->Get(ReadOptions(), value, &list_data);
  if (s.IsNotFound()) return Status::OK();
  if (!s.ok()) return s;
  std::vector<PostingEntry> entries;
  if (!PostingList::Parse(Slice(list_data), &entries)) {
    return Status::Corruption("bad posting list for ", value);
  }
  // Counted at parse time (entries in the list this query read), so the
  // value is identical at every read_parallelism setting.
  PerfCounterAdd(&PerfContext::posting_entries_scanned, entries.size());
  TopKCollector heap(k);
  std::set<std::string> seen;
  if (!parallel_reads()) {
    for (const PostingEntry& e : entries) {
      // Stop on the STORED seq bound, not on a full heap: a crash-stale
      // entry (written index-first, primary never committed) can validate
      // at a lower primary seq than it stored, so a full heap may still be
      // displaced by later entries — but never by one whose stored seq is
      // already at or below the heap floor, since a validated result's seq
      // never exceeds the stored seq of the entry that produced it.
      if (!heap.WouldAdmit(e.seq)) break;  // List is stored-seq-descending
      if (e.deleted) continue;
      if (!seen.insert(e.primary_key).second) continue;
      QueryResult r;
      if (FetchAndValidate(Slice(e.primary_key), value, value, e.seq, &r)) {
        heap.Add(std::move(r));
      }
    }
  } else {
    // Parallel path: validate the seq-descending list in chunks, each chunk
    // one MultiGet. A chunk may run past the entry where the sequential
    // scan stops, but those extras are older than everything the full heap
    // retains, so Add() rejects them and the final heap is identical.
    const size_t chunk = BatchChunk(k);
    size_t idx = 0;
    // Chunk boundaries stop on the next entry's STORED seq (see the
    // sequential path: a full heap alone is not a sound cutoff when
    // crash-stale entries validate below their stored seq).
    while (idx < entries.size() && heap.WouldAdmit(entries[idx].seq)) {
      std::vector<std::string> cand;
      std::vector<SequenceNumber> cand_seqs;
      while (idx < entries.size() && cand.size() < chunk) {
        const PostingEntry& e = entries[idx++];
        if (e.deleted) continue;
        if (!seen.insert(e.primary_key).second) continue;
        cand.push_back(e.primary_key);
        cand_seqs.push_back(e.seq);
      }
      std::vector<QueryResult> fetched;
      std::vector<char> valid;
      FetchAndValidateBatch(cand, cand_seqs, value, value, &fetched, &valid);
      for (size_t i = 0; i < cand.size(); i++) {
        if (valid[i]) heap.Add(std::move(fetched[i]));
      }
    }
  }
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

Status EagerIndex::RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                               std::vector<QueryResult>* results) {
  results->clear();
  // Range scan over the index table's (secondary) keys; merge the K-newest
  // across all matching lists with the min-heap.
  TopKCollector heap(k);
  std::set<std::string> seen;
  // Parallel path: survivors of the pruning below accumulate into chunks,
  // each resolved with one MultiGet. The stale heap makes WouldAdmit fetch
  // a superset of the sequential run's candidates; Add()'s exact predicate
  // then rejects anything the sequential heap would have, so the final
  // top-K is identical.
  const bool batched = parallel_reads();
  const size_t chunk = BatchChunk(k);
  std::vector<std::string> cand;
  std::vector<SequenceNumber> cand_seqs;
  auto flush = [&]() {
    if (cand.empty()) return;
    std::vector<QueryResult> fetched;
    std::vector<char> valid;
    FetchAndValidateBatch(cand, cand_seqs, lo, hi, &fetched, &valid);
    for (size_t i = 0; i < cand.size(); i++) {
      if (valid[i]) heap.Add(std::move(fetched[i]));
    }
    cand.clear();
    cand_seqs.clear();
  };
  std::unique_ptr<Iterator> it(index_db_->NewIterator(ReadOptions()));
  for (it->Seek(lo); it->Valid() && it->key().compare(hi) <= 0; it->Next()) {
    std::vector<PostingEntry> entries;
    if (!PostingList::Parse(it->value(), &entries)) continue;
    PerfCounterAdd(&PerfContext::posting_entries_scanned, entries.size());
    for (const PostingEntry& e : entries) {
      if (e.deleted) continue;
      if (!heap.WouldAdmit(e.seq)) break;  // List is seq-descending
      if (!seen.insert(e.primary_key).second) continue;
      if (batched) {
        cand.push_back(e.primary_key);
        cand_seqs.push_back(e.seq);
        if (cand.size() >= chunk) flush();
        continue;
      }
      QueryResult r;
      if (FetchAndValidate(Slice(e.primary_key), lo, hi, e.seq, &r)) {
        heap.Add(std::move(r));
      }
    }
  }
  flush();
  if (!it->status().ok()) return it->status();
  *results = heap.TakeSortedNewestFirst();
  return Status::OK();
}

}  // namespace leveldbpp
