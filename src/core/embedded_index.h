// EmbeddedIndex (paper Section 3): no separate index structure. Every
// primary-table SSTable carries, per data block, a bloom filter and a zone
// map for each indexed attribute (built for free when the immutable SSTable
// is created); a file-level zone map lives in the MANIFEST metadata; and
// unflushed records are covered by the memtable's in-memory attribute tree.
//
// LOOKUP scans level by level: in-memory filters decide which blocks could
// contain matches, only those blocks are read, and each match is validity-
// checked with GetLite (metadata-only supersession check). Because records
// within a level are ordered by primary key — not time — a level must be
// drained before top-K can terminate (Algorithm 5).
//
// RANGELOOKUP uses zone maps alone (blooms cannot answer ranges); on
// non-time-correlated attributes this degrades toward a full scan, exactly
// the paper's Table 3 worst case.

#ifndef LEVELDBPP_CORE_EMBEDDED_INDEX_H_
#define LEVELDBPP_CORE_EMBEDDED_INDEX_H_

#include "core/secondary_index.h"

namespace leveldbpp {

class EmbeddedIndex : public SecondaryIndex {
 public:
  EmbeddedIndex(std::string attribute, DBImpl* primary)
      : SecondaryIndex(std::move(attribute), primary) {}

  IndexType type() const override { return IndexType::kEmbedded; }

  // Maintenance is free: the primary table's builder embeds the filters.
  Status OnPut(const Slice&, const Slice&, SequenceNumber) override {
    return Status::OK();
  }
  Status OnDelete(const Slice&, const Slice&, SequenceNumber) override {
    return Status::OK();
  }

  Status Lookup(const Slice& value, size_t k,
                std::vector<QueryResult>* results) override {
    return Scan(value, value, k, results);
  }

  Status RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                     std::vector<QueryResult>* results) override {
    return Scan(lo, hi, k, results);
  }

 private:
  Status Scan(const Slice& lo, const Slice& hi, size_t k,
              std::vector<QueryResult>* results);
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_EMBEDDED_INDEX_H_
