// CompositeIndex (paper Section 4.2): stand-alone index table whose keys
// are `secondary-key + 0x00 + primary-key` composites with (almost) empty
// values (AsterixDB / Spanner style). LOOKUP is a prefix range scan.
//
// Because LevelDB compaction rotates round-robin through a level's key
// space, composite entries for one secondary key are NOT time-ordered
// across levels — so LOOKUP must traverse all levels before top-K can
// terminate (unlike Lazy). Writes and compactions are the cheapest of the
// stand-alone variants: plain small KV entries, no JSON list parsing.

#ifndef LEVELDBPP_CORE_COMPOSITE_INDEX_H_
#define LEVELDBPP_CORE_COMPOSITE_INDEX_H_

#include "core/standalone_index.h"

namespace leveldbpp {

class CompositeIndex : public StandAloneIndex {
 public:
  static Status Open(std::string attribute, DBImpl* primary,
                     const Options& base, const std::string& path,
                     std::unique_ptr<SecondaryIndex>* out);

  IndexType type() const override { return IndexType::kComposite; }

  Status OnPut(const Slice& primary_key, const Slice& attr_value,
               SequenceNumber seq) override;
  Status OnDelete(const Slice& primary_key, const Slice& attr_value,
                  SequenceNumber seq) override;
  /// Sorts the batch's composite keys and splices them in as SSTables.
  /// Safe on a NON-empty table too: per composite key, newest sequence
  /// wins — exactly Put semantics — and the feed's unique primary keys
  /// guarantee unique composite keys within the batch.
  Status BulkLoad(const std::vector<IndexOp>& entries) override;
  Status Lookup(const Slice& value, size_t k,
                std::vector<QueryResult>* results) override;
  Status RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                     std::vector<QueryResult>* results) override;

  /// Composite key codec: attr value and primary key joined by 0x00.
  /// REQUIRES: attr values contain no NUL byte (the workload's attribute
  /// encodings guarantee this; documents with NULs are rejected upstream).
  static std::string MakeCompositeKey(const Slice& attr_value,
                                      const Slice& primary_key);
  static bool SplitCompositeKey(const Slice& composite, Slice* attr_value,
                                Slice* primary_key);

 private:
  using StandAloneIndex::StandAloneIndex;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_COMPOSITE_INDEX_H_
