#include "core/secondary_db.h"

#include "core/composite_index.h"
#include "core/document.h"
#include "core/eager_index.h"
#include "core/embedded_index.h"
#include "core/lazy_index.h"
#include "core/noindex_index.h"
#include "db/event_listener.h"
#include "env/env.h"
#include "util/perf_context.h"

namespace leveldbpp {

namespace {

HistogramType LookupHistogram(IndexType type) {
  switch (type) {
    case IndexType::kNoIndex: return kHistLookupNoIndexMicros;
    case IndexType::kEmbedded: return kHistLookupEmbeddedMicros;
    case IndexType::kLazy: return kHistLookupLazyMicros;
    case IndexType::kEager: return kHistLookupEagerMicros;
    case IndexType::kComposite: return kHistLookupCompositeMicros;
  }
  return kHistLookupNoIndexMicros;
}

}  // namespace

/// Applies buffered index maintenance whenever the primary table flushes a
/// memtable — the natural batch boundary of the deferred mode (Luo & Carey's
/// "maintain on flush"). Runs on the flushing thread with the primary's
/// mutex released; it writes only to the separate index tables.
class DeferredDrainListener : public EventListener {
 public:
  explicit DeferredDrainListener(SecondaryDB* db) : db_(db) {}
  void OnFlushEnd(const FlushJobInfo& /*info*/) override {
    db_->DrainDeferred();
  }

 private:
  SecondaryDB* db_;
};

SecondaryDB::SecondaryDB(const SecondaryDBOptions& options)
    : options_(options),
      primary_stats_(new Statistics),
      primary_filter_(
          NewBloomFilterPolicy(options.primary_bloom_bits_per_key)),
      secondary_filter_(
          NewBloomFilterPolicy(options.embedded_bloom_bits_per_key)) {}

SecondaryDB::~SecondaryDB() {
  // Apply any still-buffered index maintenance before the tables close, so
  // a clean shutdown never loses acknowledged index entries.
  DrainDeferred();
}

Status SecondaryDB::Open(const SecondaryDBOptions& options,
                         const std::string& path,
                         std::unique_ptr<SecondaryDB>* dbptr) {
  dbptr->reset();
  if (options.sync_writes &&
      options.index_maintenance != IndexMaintenance::kSync) {
    // Crash-consistency depends on synchronous index-FIRST writes, which
    // deferral contradicts outright — and which can durably store sequence
    // numbers the primary never committed, the exact postings the
    // timestamp fast path must never trust.
    return Status::InvalidArgument(
        "sync_writes requires IndexMaintenance::kSync");
  }
  std::unique_ptr<SecondaryDB> db(new SecondaryDB(options));

  Env* env = options.base.env != nullptr ? options.base.env : Env::Posix();
  Status s = env->CreateDir(path);
  if (!s.ok()) return s;

  // Crash-consistency mode syncs every table's WAL, the index tables'
  // internal writes included — that is the whole point of routing the knob
  // through Options instead of per-call WriteOptions.
  Options base = options.base;
  base.env = env;
  base.sync_writes = base.sync_writes || options.sync_writes;
  db->path_ = path;
  db->index_base_ = base;
  // Only the PRIMARY table's sequences are globally meaningful (postings
  // store primary seqs; cross-shard merges order by them). The stand-alone
  // index tables' internal writes number themselves densely as usual.
  db->index_base_.shared_sequence = nullptr;

  // Primary table.
  Options primary_options = base;
  primary_options.create_if_missing = true;
  primary_options.statistics = db->primary_statistics();
  primary_options.filter_policy = db->primary_filter_.get();
  if (options.index_type == IndexType::kEmbedded) {
    primary_options.secondary_attributes = options.indexed_attributes;
    primary_options.attribute_extractor = JsonAttributeExtractor::Instance();
    primary_options.secondary_filter_policy = db->secondary_filter_.get();
  }
  if (options.index_maintenance == IndexMaintenance::kDeferredBatch &&
      db->standalone()) {
    primary_options.listeners.push_back(
        std::make_shared<DeferredDrainListener>(db.get()));
  }
  DBImpl* primary = nullptr;
  s = DBImpl::Open(primary_options, path + "/primary", &primary);
  if (!s.ok()) return s;
  db->primary_.reset(primary);

  // Per-attribute index objects.
  for (const std::string& attr : options.indexed_attributes) {
    std::unique_ptr<SecondaryIndex> index;
    s = db->OpenIndex(attr, &index);
    if (!s.ok()) return s;
    db->indexes_.push_back(std::move(index));
  }

  *dbptr = std::move(db);
  return Status::OK();
}

Status SecondaryDB::OpenIndex(const std::string& attr,
                              std::unique_ptr<SecondaryIndex>* index) {
  index->reset();
  Status s;
  const std::string index_path = path_ + "/index_" + attr;
  switch (options_.index_type) {
    case IndexType::kNoIndex:
      index->reset(new NoIndex(attr, primary_.get()));
      break;
    case IndexType::kEmbedded:
      index->reset(new EmbeddedIndex(attr, primary_.get()));
      break;
    case IndexType::kLazy:
      s = LazyIndex::Open(attr, primary_.get(), index_base_, index_path,
                          index);
      break;
    case IndexType::kEager:
      s = EagerIndex::Open(attr, primary_.get(), index_base_, index_path,
                           index);
      break;
    case IndexType::kComposite:
      s = CompositeIndex::Open(attr, primary_.get(), index_base_, index_path,
                               index);
      break;
  }
  if (s.ok() && *index != nullptr) {
    (*index)->set_maintenance(options_.index_maintenance);
  }
  return s;
}

SecondaryIndex* SecondaryDB::index(const std::string& attribute) {
  for (auto& index : indexes_) {
    if (index->attribute() == attribute) return index.get();
  }
  return nullptr;
}

const Snapshot* SecondaryDB::GetSnapshot() { return primary_->GetSnapshot(); }

void SecondaryDB::ReleaseSnapshot(const Snapshot* snapshot) {
  primary_->ReleaseSnapshot(snapshot);
}

Iterator* SecondaryDB::NewIterator(const ReadOptions& options) {
  return primary_->NewIterator(options);
}

Status SecondaryDB::Put(const Slice& key, const Slice& json_value,
                        const WriteControl& ctl) {
  // Extract indexed attributes up front (stand-alone variants need them;
  // the extraction also validates the document).
  std::vector<std::pair<SecondaryIndex*, std::string>> attr_values;
  if (standalone()) {
    std::string attr_value;
    for (auto& index : indexes_) {
      if (JsonAttributeExtractor::Instance()->Extract(
              json_value, index->attribute(), &attr_value)) {
        attr_values.emplace_back(index.get(), attr_value);
      }
    }
  }

  if (options_.sync_writes) {
    // Crash-consistency ordering: durably write the index entries FIRST,
    // tagged with the sequence number the primary write will carry (claimed
    // up front — under a shard-shared counter the claim reserves it; without
    // one the prediction holds under the documented single-writer
    // requirement). Any crash prefix then leaves at worst a stale posting —
    // the primary either lacks the key or holds an older attribute value,
    // and query-time validation filters both. The reverse order could lose
    // an acknowledged-by-primary record from query results forever.
    const SequenceNumber seq = primary_->ClaimNextSequence();
    for (auto& [index, attr_value] : attr_values) {
      Status s = index->OnPut(key, Slice(attr_value), seq);
      if (!s.ok()) return s;
    }
    WriteOptions wo;
    wo.assigned_seq = seq;
    wo.no_stall = ctl.no_stall;
    return primary_->Put(wo, key, json_value);
  }

  WriteOptions wo;
  wo.no_stall = ctl.no_stall;
  Status s = primary_->Put(wo, key, json_value);
  if (!s.ok()) return s;
  const SequenceNumber seq = primary_->LastSequence();

  if (options_.index_maintenance == IndexMaintenance::kDeferredBatch) {
    for (auto& [index, attr_value] : attr_values) {
      s = BufferDeferred(index, key, Slice(attr_value), seq, false);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
  for (auto& [index, attr_value] : attr_values) {
    s = index->OnPut(key, Slice(attr_value), seq);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SecondaryDB::Get(const Slice& key, std::string* value) {
  return primary_->Get(ReadOptions(), key, value);
}

Status SecondaryDB::Delete(const Slice& key, const WriteControl& ctl) {
  // Stand-alone indexes must learn the victim's attribute values to target
  // the right index entries, which costs a primary-table read.
  std::vector<std::pair<SecondaryIndex*, std::string>> attr_values;
  if (standalone()) {
    std::string old_value;
    if (primary_->Get(ReadOptions(), key, &old_value).ok()) {
      std::string attr_value;
      for (auto& index : indexes_) {
        if (JsonAttributeExtractor::Instance()->Extract(
                Slice(old_value), index->attribute(), &attr_value)) {
          attr_values.emplace_back(index.get(), attr_value);
        }
      }
    }
  }

  // Delete stays primary-first even in sync_writes mode — the OPPOSITE of
  // Put's crash ordering, for the same reason. A Lazy deletion marker
  // shadows every older posting for its key, so an index-first crash could
  // leave a phantom marker hiding a record the primary still holds: a live
  // record silently missing from query results, unfilterable. Primary-first
  // instead leaves at worst a primary tombstone with lingering index
  // postings, which validation filters (the primary Get misses).
  WriteOptions wo;
  wo.no_stall = ctl.no_stall;
  Status s = primary_->Delete(wo, key);
  if (!s.ok()) return s;
  const SequenceNumber seq = primary_->LastSequence();

  if (options_.index_maintenance == IndexMaintenance::kDeferredBatch) {
    // The victim's attribute values were read from the primary above,
    // BEFORE the delete; FIFO replay preserves the put/delete order.
    for (auto& [index, attr_value] : attr_values) {
      s = BufferDeferred(index, key, Slice(attr_value), seq, true);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
  for (auto& [index, attr_value] : attr_values) {
    s = index->OnDelete(key, Slice(attr_value), seq);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SecondaryDB::Lookup(const std::string& attribute, const Slice& value,
                           size_t k, std::vector<QueryResult>* results) {
  SecondaryIndex* idx = index(attribute);
  if (idx == nullptr) {
    return Status::InvalidArgument("attribute is not indexed: ", attribute);
  }
  // Deferred maintenance settles before any query reads the index, keeping
  // results byte-identical to kSync. (Drained before the timer: the apply
  // is write work and must not pollute the lookup latency distributions.)
  Status ds = DrainDeferred();
  if (!ds.ok()) return ds;
  // Both lookup forms land in the variant's histogram: the paper's LOOKUP /
  // RANGELOOKUP latency figures are per-variant distributions.
  Env* env = index_base_.env != nullptr ? index_base_.env : Env::Posix();
  const uint64_t start = env->NowMicros();
  ScopedPerfTimer timer(&PerfContext::lookup_micros);
  Status s = idx->Lookup(value, k, results);
  primary_statistics()->RecordHistogram(LookupHistogram(options_.index_type),
                                        env->NowMicros() - start);
  return s;
}

Status SecondaryDB::RangeLookup(const std::string& attribute, const Slice& lo,
                                const Slice& hi, size_t k,
                                std::vector<QueryResult>* results) {
  SecondaryIndex* idx = index(attribute);
  if (idx == nullptr) {
    return Status::InvalidArgument("attribute is not indexed: ", attribute);
  }
  Status ds = DrainDeferred();
  if (!ds.ok()) return ds;
  Env* env = index_base_.env != nullptr ? index_base_.env : Env::Posix();
  const uint64_t start = env->NowMicros();
  ScopedPerfTimer timer(&PerfContext::lookup_micros);
  Status s = idx->RangeLookup(lo, hi, k, results);
  primary_statistics()->RecordHistogram(LookupHistogram(options_.index_type),
                                        env->NowMicros() - start);
  return s;
}

Status SecondaryDB::CompactAll() {
  Status s = DrainDeferred();
  if (!s.ok()) return s;
  s = primary_->CompactAll();
  for (auto& index : indexes_) {
    if (s.ok()) s = index->CompactAll();
  }
  return s;
}

Status SecondaryDB::MaybeCompact() {
  Status s = primary_->MaybeCompact();
  return s;
}

uint64_t SecondaryDB::IndexSizeBytes() {
  uint64_t total = 0;
  for (auto& index : indexes_) {
    total += index->IndexSizeBytes();
  }
  return total;
}

Status SecondaryDB::Repair(const SecondaryDBOptions& options,
                           const std::string& path) {
  // Reconstruct the primary table's effective options exactly as Open
  // would, so the repair rewrite regenerates the same blooms / zone maps.
  std::unique_ptr<const FilterPolicy> primary_filter(
      NewBloomFilterPolicy(options.primary_bloom_bits_per_key));
  std::unique_ptr<const FilterPolicy> secondary_filter(
      NewBloomFilterPolicy(options.embedded_bloom_bits_per_key));
  Options primary_options = options.base;
  if (primary_options.env == nullptr) primary_options.env = Env::Posix();
  primary_options.filter_policy = primary_filter.get();
  if (options.index_type == IndexType::kEmbedded) {
    primary_options.secondary_attributes = options.indexed_attributes;
    primary_options.attribute_extractor = JsonAttributeExtractor::Instance();
    primary_options.secondary_filter_policy = secondary_filter.get();
  }
  Status s = RepairDB(path + "/primary", primary_options);
  if (!s.ok()) return s;

  // The stand-alone index tables are derived data and may themselves be
  // damaged (a corrupt index MANIFEST would fail the next Open outright).
  // Drop them; Open recreates empty tables and RebuildIndex() refills them
  // from the repaired primary.
  const bool has_standalone = options.index_type == IndexType::kLazy ||
                              options.index_type == IndexType::kEager ||
                              options.index_type == IndexType::kComposite;
  if (has_standalone) {
    for (const std::string& attr : options.indexed_attributes) {
      Status d = DestroyDB(path + "/index_" + attr, primary_options);
      if (!d.ok() && s.ok()) s = d;
    }
  }
  return s;
}

Status SecondaryDB::VerifyIndexConsistency() {
  if (!standalone()) return Status::OK();
  Status ds = DrainDeferred();
  if (!ds.ok()) return ds;
  const JsonAttributeExtractor* extractor = JsonAttributeExtractor::Instance();
  std::string attr_value;
  std::vector<QueryResult> results;
  Status bad;
  Status s = primary_->ScanAll(
      ReadOptions(),
      [&](const Slice& key, SequenceNumber, const Slice& value) {
        for (auto& index : indexes_) {
          if (!extractor->Extract(value, index->attribute(), &attr_value)) {
            continue;
          }
          Status ls = index->Lookup(Slice(attr_value), 0, &results);
          if (!ls.ok()) {
            bad = ls;
            return false;
          }
          bool reachable = false;
          for (const QueryResult& r : results) {
            if (Slice(r.primary_key) == key) {
              reachable = true;
              break;
            }
          }
          if (!reachable) {
            bad = Status::Corruption(
                "index '" + index->attribute() + "' has no posting for key ",
                key);
            return false;
          }
        }
        return true;
      });
  return s.ok() ? bad : s;
}

Status SecondaryDB::RebuildIndex() {
  if (!standalone()) return Status::OK();

  // Settle (and thereby empty) the deferred buffer first: its ops hold
  // pointers into indexes_, which is about to be torn down.
  Status ds = DrainDeferred();
  if (!ds.ok()) return ds;

  // Tear down: close the index tables (the objects own their DB handles),
  // then wipe them from disk.
  indexes_.clear();
  Status s;
  for (const std::string& attr : options_.indexed_attributes) {
    s = DestroyDB(path_ + "/index_" + attr, index_base_);
    if (!s.ok()) return s;
  }
  for (const std::string& attr : options_.indexed_attributes) {
    std::unique_ptr<SecondaryIndex> index;
    s = OpenIndex(attr, &index);
    if (!s.ok()) return s;
    indexes_.push_back(std::move(index));
  }

  // Refill from the primary: one posting per (newest visible record,
  // covered attribute), carrying the record's REAL sequence number so
  // query-time validation and GetLite treat rebuilt postings exactly like
  // write-path ones. Older superseded versions get no postings — the
  // rebuilt index starts with zero stale entries.
  const JsonAttributeExtractor* extractor = JsonAttributeExtractor::Instance();
  Statistics* stats = primary_statistics();
  std::string attr_value;
  Status put_error;
  std::vector<uint64_t> entries_per_index(indexes_.size(), 0);
  s = primary_->ScanAll(
      ReadOptions(),
      [&](const Slice& key, SequenceNumber seq, const Slice& value) {
        for (size_t i = 0; i < indexes_.size(); i++) {
          if (!extractor->Extract(value, indexes_[i]->attribute(),
                                  &attr_value)) {
            continue;
          }
          Status ps = indexes_[i]->OnPut(key, Slice(attr_value), seq);
          if (!ps.ok()) {
            put_error = ps;
            return false;
          }
          entries_per_index[i]++;
          if (stats != nullptr) stats->Record(kIndexRebuildEntries);
        }
        return true;
      });
  if (s.ok()) s = put_error;
  if (s.ok() && !options_.base.listeners.empty()) {
    // One event per rebuilt index, after its refill completed.
    for (size_t i = 0; i < indexes_.size(); i++) {
      IndexRebuildInfo info;
      info.db_name = path_;
      info.attribute = indexes_[i]->attribute();
      info.entries = entries_per_index[i];
      for (const std::shared_ptr<EventListener>& l : options_.base.listeners) {
        if (l == nullptr) continue;
        try {
          l->OnIndexRebuild(info);
        } catch (...) {
          // Listener exceptions never propagate into the engine.
        }
      }
    }
  }
  return s;
}

Status SecondaryDB::BufferDeferred(SecondaryIndex* index,
                                   const Slice& primary_key,
                                   const Slice& attr_value,
                                   SequenceNumber seq, bool is_delete) {
  size_t buffered;
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    DeferredOp d;
    d.index = index;
    d.op.primary_key = primary_key.ToString();
    d.op.attr_value = attr_value.ToString();
    d.op.seq = seq;
    d.op.is_delete = is_delete;
    deferred_.push_back(std::move(d));
    buffered = deferred_.size();
  }
  primary_statistics()->Record(kIndexDeferredOps);
  if (buffered >= options_.deferred_batch_max_ops) {
    return DrainDeferred();
  }
  return Status::OK();
}

Status SecondaryDB::DrainDeferred() {
  if (options_.index_maintenance != IndexMaintenance::kDeferredBatch) {
    return Status::OK();
  }
  // Apply lock FIRST, swap second: a racing drain cannot swap out (let
  // alone apply) ops buffered after ours until we finished applying ours,
  // so batches apply in buffering order (see the header's lock-order note).
  std::lock_guard<std::mutex> apply_lock(deferred_apply_mu_);
  std::vector<DeferredOp> batch;
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    batch.swap(deferred_);
  }
  if (batch.empty()) return Status::OK();
  Status s;
  std::vector<IndexOp> ops;
  for (auto& index : indexes_) {
    ops.clear();
    for (DeferredOp& d : batch) {
      if (d.index == index.get()) ops.push_back(std::move(d.op));
    }
    if (ops.empty()) continue;
    Status is = index->OnPutBatch(ops);
    if (s.ok()) s = is;
  }
  primary_statistics()->Record(kIndexDeferredApplies);
  return s;
}

Status SecondaryDB::IngestWithIndexes(const IngestFeed& feed,
                                      IngestStats* stats) {
  // Earlier buffered maintenance must not replay on top of (and thereby
  // reorder around) the bulk-loaded postings.
  Status s = DrainDeferred();
  if (!s.ok()) return s;

  if (!standalone()) {
    // NoIndex scans the data; Embedded's blooms and zone maps are built by
    // the table builder inside the ingest itself. Nothing extra to do.
    return primary_->IngestExternalFiles(feed, stats);
  }

  // Capture each record's extracted attribute values as the primary ingest
  // streams through; sequence numbers follow once the ingest reports its
  // window (record j received first_seq + j).
  struct Captured {
    uint64_t record_index;
    std::string primary_key;
    std::string attr_value;
  };
  std::vector<std::vector<Captured>> captured(indexes_.size());
  uint64_t record_index = 0;
  const JsonAttributeExtractor* extractor = JsonAttributeExtractor::Instance();
  IngestFeed wrapped = [&](std::string* key, std::string* value) {
    if (!feed(key, value)) return false;
    std::string attr_value;
    for (size_t i = 0; i < indexes_.size(); i++) {
      if (extractor->Extract(Slice(*value), indexes_[i]->attribute(),
                             &attr_value)) {
        captured[i].push_back({record_index, *key, attr_value});
      }
    }
    record_index++;
    return true;
  };
  IngestStats local;
  s = primary_->IngestExternalFiles(wrapped, &local);
  if (!s.ok()) return s;

  // A BulkLoad failure here leaves the primary loaded but an index behind —
  // missing postings hide records from queries, so surface the error; a
  // RebuildIndex() regenerates the tables from the (intact) primary.
  for (size_t i = 0; i < indexes_.size() && s.ok(); i++) {
    std::vector<IndexOp> ops;
    ops.reserve(captured[i].size());
    for (Captured& c : captured[i]) {
      IndexOp op;
      op.primary_key = std::move(c.primary_key);
      op.attr_value = std::move(c.attr_value);
      op.seq = local.first_seq + c.record_index;
      ops.push_back(std::move(op));
    }
    s = indexes_[i]->BulkLoad(ops);
  }
  if (s.ok() && stats != nullptr) *stats = local;
  return s;
}

Status SecondaryDB::Resume() {
  Status s = primary_->Resume();
  for (auto& index : indexes_) {
    Status is = index->Resume();
    if (s.ok() && !is.ok()) s = is;
  }
  return s;
}

DBImpl::WriteStallState SecondaryDB::GetWriteStallState() {
  DBImpl::WriteStallState st = primary_->GetWriteStallState();
  if (st.bg_error.ok()) {
    for (auto& index : indexes_) {
      Status is = index->BackgroundError();
      if (!is.ok()) {
        st.bg_error = is;
        // A sick index table refuses writes outright; advertise the same
        // patient hint the primary's bg-error rung does.
        if (st.suggested_retry_micros == 0) st.suggested_retry_micros = 100000;
        break;
      }
    }
  }
  return st;
}

uint64_t SecondaryDB::TotalTicker(Ticker t) {
  uint64_t total = primary_statistics()->Get(t);
  for (auto& index : indexes_) {
    Statistics* stats = index->index_statistics();
    if (stats != nullptr) total += stats->Get(t);
  }
  return total;
}

}  // namespace leveldbpp
