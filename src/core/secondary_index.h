// SecondaryIndex: the per-attribute index strategy interface. One instance
// indexes ONE secondary attribute of the primary table (mirroring the
// paper's setup: a UserID index and a CreationTime index), with five
// implementations:
//
//   EmbeddedIndex   — no separate structure (bloom filters + zone maps live
//                     inside the primary SSTables)                Section 3
//   LazyIndex       — stand-alone LSM table of posting lists,
//                     append-only fragments merged at compaction  Section 4.1.2
//   EagerIndex      — stand-alone table, read-modify-write lists  Section 4.1.1
//   CompositeIndex  — stand-alone table of secondary+primary keys Section 4.2
//   NoIndex         — full-scan baseline
//
// Maintenance hooks are invoked by SecondaryDB around primary-table writes;
// query methods implement LOOKUP(A, a, K) and RANGELOOKUP(A, a, b, K) from
// Table 1 (K most recent by insertion sequence; K == 0 means unlimited).

#ifndef LEVELDBPP_CORE_SECONDARY_INDEX_H_
#define LEVELDBPP_CORE_SECONDARY_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "core/topk.h"
#include "db/db_impl.h"
#include "util/status.h"

namespace leveldbpp {

enum class IndexType {
  kNoIndex,
  kEmbedded,
  kLazy,
  kEager,
  kComposite,
};

const char* IndexTypeName(IndexType type);

class SecondaryIndex {
 public:
  SecondaryIndex(std::string attribute, DBImpl* primary)
      : attribute_(std::move(attribute)), primary_(primary) {}
  virtual ~SecondaryIndex() = default;

  SecondaryIndex(const SecondaryIndex&) = delete;
  SecondaryIndex& operator=(const SecondaryIndex&) = delete;

  const std::string& attribute() const { return attribute_; }

  virtual IndexType type() const = 0;

  /// Called AFTER the primary-table write assigned `seq` to (key, value).
  /// `attr_value` is the extracted secondary key (absent records are not
  /// indexed and this is not called).
  virtual Status OnPut(const Slice& primary_key, const Slice& attr_value,
                       SequenceNumber seq) = 0;

  /// Called after a DEL of `primary_key` whose old record carried
  /// `attr_value`; `seq` is the deletion's sequence number.
  virtual Status OnDelete(const Slice& primary_key, const Slice& attr_value,
                          SequenceNumber seq) = 0;

  /// LOOKUP(A, a, K): the K most recent valid records with val(A) == a,
  /// newest first.
  virtual Status Lookup(const Slice& value, size_t k,
                        std::vector<QueryResult>* results) = 0;

  /// RANGELOOKUP(A, a, b, K): the K most recent valid records with
  /// a <= val(A) <= b, newest first.
  virtual Status RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                             std::vector<QueryResult>* results) = 0;

  /// Index-table housekeeping for "Static" workloads (flush + full
  /// compaction). Embedded/NoIndex have no separate table: no-op.
  virtual Status CompactAll() { return Status::OK(); }

  /// Clear a transient sticky background error on the index's own table
  /// (see DB::Resume). Embedded/NoIndex have no separate table: no-op.
  virtual Status Resume() { return Status::OK(); }

  /// Statistics of the index's own table (nullptr when none exists).
  virtual Statistics* index_statistics() { return nullptr; }

  /// Bytes consumed by the index's own table (0 when none exists).
  virtual uint64_t IndexSizeBytes() { return 0; }

 protected:
  /// Shared validity check for stand-alone indexes: GET the record from the
  /// primary table and confirm its attribute still matches (stale entries
  /// from updates fail this, per Section 4.1.1). On success fills *out.
  bool FetchAndValidate(const Slice& primary_key, const Slice& lo,
                        const Slice& hi, QueryResult* out);

  /// Batched FetchAndValidate over one posting-list level's candidates,
  /// resolved through DBImpl::MultiGetWithMeta (parallel when
  /// Options::read_parallelism > 1). (*valid)[i] is nonzero iff keys[i]
  /// validated, in which case (*out)[i] is filled.
  void FetchAndValidateBatch(const std::vector<std::string>& keys,
                             const Slice& lo, const Slice& hi,
                             std::vector<QueryResult>* out,
                             std::vector<char>* valid);

  /// True when the primary table opts queries into batched, fanned-out
  /// candidate resolution.
  bool parallel_reads() const {
    return primary_->options().read_parallelism > 1;
  }

  /// Chunk size for batched candidate validation: enough keys to fill the
  /// heap (and the pool) per round without unbounded overfetch.
  size_t BatchChunk(size_t k) const {
    size_t p = static_cast<size_t>(primary_->options().read_parallelism);
    return k != 0 ? std::max(k, p) : std::max<size_t>(64, p);
  }

  std::string attribute_;
  DBImpl* primary_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_SECONDARY_INDEX_H_
