// SecondaryIndex: the per-attribute index strategy interface. One instance
// indexes ONE secondary attribute of the primary table (mirroring the
// paper's setup: a UserID index and a CreationTime index), with five
// implementations:
//
//   EmbeddedIndex   — no separate structure (bloom filters + zone maps live
//                     inside the primary SSTables)                Section 3
//   LazyIndex       — stand-alone LSM table of posting lists,
//                     append-only fragments merged at compaction  Section 4.1.2
//   EagerIndex      — stand-alone table, read-modify-write lists  Section 4.1.1
//   CompositeIndex  — stand-alone table of secondary+primary keys Section 4.2
//   NoIndex         — full-scan baseline
//
// Maintenance hooks are invoked by SecondaryDB around primary-table writes;
// query methods implement LOOKUP(A, a, K) and RANGELOOKUP(A, a, b, K) from
// Table 1 (K most recent by insertion sequence; K == 0 means unlimited).

#ifndef LEVELDBPP_CORE_SECONDARY_INDEX_H_
#define LEVELDBPP_CORE_SECONDARY_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "core/topk.h"
#include "db/db_impl.h"
#include "util/status.h"

namespace leveldbpp {

enum class IndexType {
  kNoIndex,
  kEmbedded,
  kLazy,
  kEager,
  kComposite,
};

const char* IndexTypeName(IndexType type);

/// When the stand-alone indexes learn about primary-table writes (the
/// maintenance axis of Luo & Carey's LSM survey; the paper itself fixes
/// kSync). Embedded/NoIndex have no separate structure and ignore this.
enum class IndexMaintenance {
  /// Index entries are written inside every Put/Delete (paper behavior).
  kSync,
  /// Index ops are buffered and applied in FIFO batches — on primary-table
  /// flush, on every query, or when the buffer hits its cap. Batching lets
  /// Eager collapse its per-put read-modify-write to one RMW per distinct
  /// attribute value. Queries drain first, so results are byte-identical
  /// to kSync.
  kDeferredBatch,
  /// Writes stay synchronous, but point-LOOKUP validation trusts the
  /// posting's stored sequence number: one metadata-only IsNewestVersion
  /// probe replaces the full fetch+extract+compare for stale entries.
  /// Sound because the buffered write path stores the primary's real
  /// sequence numbers (rejected at Open when combined with sync_writes,
  /// whose index-first ordering can store seqs the primary never
  /// committed). Results stay byte-identical to kSync.
  kTimestampValidated,
};

/// One buffered index-maintenance operation (kDeferredBatch) or one bulk
/// record (BulkLoad).
struct IndexOp {
  std::string primary_key;
  std::string attr_value;
  SequenceNumber seq = 0;
  bool is_delete = false;
};

class SecondaryIndex {
 public:
  SecondaryIndex(std::string attribute, DBImpl* primary)
      : attribute_(std::move(attribute)), primary_(primary) {}
  virtual ~SecondaryIndex() = default;

  SecondaryIndex(const SecondaryIndex&) = delete;
  SecondaryIndex& operator=(const SecondaryIndex&) = delete;

  const std::string& attribute() const { return attribute_; }

  virtual IndexType type() const = 0;

  /// Called AFTER the primary-table write assigned `seq` to (key, value).
  /// `attr_value` is the extracted secondary key (absent records are not
  /// indexed and this is not called).
  virtual Status OnPut(const Slice& primary_key, const Slice& attr_value,
                       SequenceNumber seq) = 0;

  /// Called after a DEL of `primary_key` whose old record carried
  /// `attr_value`; `seq` is the deletion's sequence number.
  virtual Status OnDelete(const Slice& primary_key, const Slice& attr_value,
                          SequenceNumber seq) = 0;

  /// Apply a FIFO batch of buffered maintenance ops (kDeferredBatch). The
  /// default replays them through OnPut/OnDelete in order; Eager overrides
  /// to coalesce the read-modify-writes per attribute value. Must leave the
  /// index byte-identical to the sequential replay.
  virtual Status OnPutBatch(const std::vector<IndexOp>& ops);

  /// Load `entries` (all puts, strictly increasing UNIQUE primary keys,
  /// ascending seqs — the shape IngestWithIndexes produces) into the index.
  /// The default replays OnPut; stand-alone variants override to build
  /// their index table via SSTable ingestion when that is sound.
  virtual Status BulkLoad(const std::vector<IndexOp>& entries);

  /// Switch the validation strategy (set once, before any queries).
  void set_maintenance(IndexMaintenance m) { maintenance_ = m; }
  IndexMaintenance maintenance() const { return maintenance_; }

  /// LOOKUP(A, a, K): the K most recent valid records with val(A) == a,
  /// newest first.
  virtual Status Lookup(const Slice& value, size_t k,
                        std::vector<QueryResult>* results) = 0;

  /// RANGELOOKUP(A, a, b, K): the K most recent valid records with
  /// a <= val(A) <= b, newest first.
  virtual Status RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                             std::vector<QueryResult>* results) = 0;

  /// Index-table housekeeping for "Static" workloads (flush + full
  /// compaction). Embedded/NoIndex have no separate table: no-op.
  virtual Status CompactAll() { return Status::OK(); }

  /// Clear a transient sticky background error on the index's own table
  /// (see DB::Resume). Embedded/NoIndex have no separate table: no-op.
  virtual Status Resume() { return Status::OK(); }

  /// Sticky background error on the index's own table, if any — a shard is
  /// only healthy when every one of its tables is (index writes keep the
  /// blocking path, so a sick index table fails writes just as loudly as a
  /// sick primary). Embedded/NoIndex have no separate table: always OK.
  virtual Status BackgroundError() { return Status::OK(); }

  /// Statistics of the index's own table (nullptr when none exists).
  virtual Statistics* index_statistics() { return nullptr; }

  /// Bytes consumed by the index's own table (0 when none exists).
  virtual uint64_t IndexSizeBytes() { return 0; }

 protected:
  /// Shared validity check for stand-alone indexes: GET the record from the
  /// primary table and confirm its attribute still matches (stale entries
  /// from updates fail this, per Section 4.1.1). On success fills *out.
  ///
  /// `stored_seq` is the sequence number the index entry carries. Under
  /// kTimestampValidated it enables the fast path for POINT probes
  /// (lo == hi): a metadata-only IsNewestVersion(key, stored_seq) check
  /// rejects stale entries without fetching the record, and an accepted
  /// entry skips the extract+compare (the newest version at `stored_seq`
  /// is by construction the record that produced the posting). Range
  /// probes (lo < hi) always take the full path: the callers' seen/checked
  /// sets are populated BEFORE validation, so rejecting an old posting of
  /// a record whose attribute moved elsewhere within [lo, hi] would drop
  /// the record — with lo == hi a newer same-value posting always precedes
  /// the stale one, making the rejection safe.
  bool FetchAndValidate(const Slice& primary_key, const Slice& lo,
                        const Slice& hi, SequenceNumber stored_seq,
                        QueryResult* out);

  /// Batched FetchAndValidate over one posting-list level's candidates,
  /// resolved through DBImpl::MultiGetWithMeta (parallel when
  /// Options::read_parallelism > 1). (*valid)[i] is nonzero iff keys[i]
  /// validated, in which case (*out)[i] is filled. `stored_seqs` parallels
  /// `keys`; when the timestamp fast path applies (see above) the batch
  /// degrades to the sequential per-key probes.
  void FetchAndValidateBatch(const std::vector<std::string>& keys,
                             const std::vector<SequenceNumber>& stored_seqs,
                             const Slice& lo, const Slice& hi,
                             std::vector<QueryResult>* out,
                             std::vector<char>* valid);

  /// True when the primary table opts queries into batched, fanned-out
  /// candidate resolution.
  bool parallel_reads() const {
    return primary_->options().read_parallelism > 1;
  }

  /// Chunk size for batched candidate validation: enough keys to fill the
  /// heap (and the pool) per round without unbounded overfetch.
  size_t BatchChunk(size_t k) const {
    size_t p = static_cast<size_t>(primary_->options().read_parallelism);
    return k != 0 ? std::max(k, p) : std::max<size_t>(64, p);
  }

  std::string attribute_;
  DBImpl* primary_;
  IndexMaintenance maintenance_ = IndexMaintenance::kSync;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_SECONDARY_INDEX_H_
