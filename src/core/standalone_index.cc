#include "core/standalone_index.h"

#include <algorithm>

namespace leveldbpp {

StandAloneIndex::StandAloneIndex(std::string attribute, DBImpl* primary)
    : SecondaryIndex(std::move(attribute), primary),
      stats_(new Statistics),
      filter_policy_(NewBloomFilterPolicy(10)) {}

StandAloneIndex::~StandAloneIndex() = default;

Status StandAloneIndex::OpenIndexTable(const Options& base,
                                       const std::string& path,
                                       const ValueMerger* merger) {
  Options options = base;
  options.create_if_missing = true;
  options.error_if_exists = false;
  // Index tables are much smaller than the data table; scale their LSM
  // geometry down so they still develop several levels (the paper's index
  // tables have L=4 at 100GB scale — the level count is what drives the
  // Lazy/Composite read and compaction trade-offs).
  options.write_buffer_size = std::max<size_t>(base.write_buffer_size / 8,
                                               64 << 10);
  options.max_file_size = std::max<size_t>(base.max_file_size / 8, 16 << 10);
  options.max_bytes_for_level_base =
      std::max<uint64_t>(base.max_bytes_for_level_base / 8, 256 << 10);
  // Index tables carry no embedded secondary meta of their own.
  options.secondary_attributes.clear();
  options.attribute_extractor = nullptr;
  options.value_merger = merger;
  options.statistics = stats_.get();
  // Bloom filters on the index table's own (secondary) keys speed up the
  // per-level posting reads (the paper's footnote assumes them).
  options.filter_policy = filter_policy_.get();
  DBImpl* db = nullptr;
  Status s = DBImpl::Open(options, path, &db);
  if (s.ok()) {
    index_db_.reset(db);
  }
  return s;
}

Status StandAloneIndex::CompactAll() { return index_db_->CompactAll(); }

uint64_t StandAloneIndex::IndexSizeBytes() {
  return index_db_->TotalSizeBytes();
}

}  // namespace leveldbpp
