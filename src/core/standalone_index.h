// StandAloneIndex: common base for the Eager, Lazy and Composite indexes —
// each owns a separate LSM index table (its own DB instance with its own
// Statistics, so benches can attribute index-table I/O and compaction cost
// separately from the primary table, as Figures 8b/9c do).

#ifndef LEVELDBPP_CORE_STANDALONE_INDEX_H_
#define LEVELDBPP_CORE_STANDALONE_INDEX_H_

#include <memory>

#include "core/secondary_index.h"
#include "table/filter_policy.h"

namespace leveldbpp {

class StandAloneIndex : public SecondaryIndex {
 public:
  ~StandAloneIndex() override;

  Status CompactAll() override;
  Status Resume() override { return index_db_->Resume(); }
  Status BackgroundError() override {
    return index_db_->GetWriteStallState().bg_error;
  }
  Statistics* index_statistics() override { return stats_.get(); }
  uint64_t IndexSizeBytes() override;

  DBImpl* index_db() { return index_db_.get(); }

 protected:
  StandAloneIndex(std::string attribute, DBImpl* primary);

  /// Open the index table at `path`. `merger` is non-null for the Lazy
  /// variant. `base` supplies env / sizing knobs (copied from the primary
  /// table's configuration).
  Status OpenIndexTable(const Options& base, const std::string& path,
                        const ValueMerger* merger);

  std::unique_ptr<Statistics> stats_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  std::unique_ptr<DBImpl> index_db_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_STANDALONE_INDEX_H_
