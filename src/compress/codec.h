// Per-block compression codec.
//
// The paper uses Snappy ("the default compression strategy of LevelDB").
// This repo must build offline and from scratch, so `SimpleLZ` provides the
// same role: a fast byte-oriented LZ77 codec applied per SSTable block, and
// switchable off (Appendix C.2 compares compressed vs uncompressed blocks).
//
// Format: varint32 uncompressed-length, then a stream of ops:
//   literal: tag byte 0x00..0x7F = literal run length L (1..127), followed
//            by L bytes
//   match:   tag byte 0x80|((len-4) & 0x3F) for match length 4..67,
//            followed by a 2-byte little-endian back-offset (1..65535)

#ifndef LEVELDBPP_COMPRESS_CODEC_H_
#define LEVELDBPP_COMPRESS_CODEC_H_

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace leveldbpp {

enum CompressionType : uint8_t {
  kNoCompression = 0x0,
  kSimpleLZCompression = 0x1,
};

namespace simplelz {

/// Compress input into *output (appended). Always succeeds; the caller is
/// expected to fall back to kNoCompression if the result is not smaller.
void Compress(const Slice& input, std::string* output);

/// Exact size of the uncompressed payload, or false on malformed input.
bool GetUncompressedLength(const Slice& compressed, uint32_t* result);

/// Decompress into `output` which must have room for GetUncompressedLength
/// bytes. Returns false on malformed input.
bool Uncompress(const Slice& compressed, char* output);

}  // namespace simplelz
}  // namespace leveldbpp

#endif  // LEVELDBPP_COMPRESS_CODEC_H_
