#include "compress/codec.h"

#include <cstring>

#include "util/coding.h"

namespace leveldbpp {
namespace simplelz {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 67;  // 4 + 63
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

inline uint32_t HashQuad(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void EmitLiterals(const char* p, size_t n, std::string* out) {
  while (n > 0) {
    size_t run = n < 127 ? n : 127;
    out->push_back(static_cast<char>(run));
    out->append(p, run);
    p += run;
    n -= run;
  }
}

}  // namespace

void Compress(const Slice& input, std::string* output) {
  PutVarint32(output, static_cast<uint32_t>(input.size()));
  const char* base = input.data();
  const char* ip = base;
  const char* end = base + input.size();
  const char* lit_start = ip;

  if (input.size() >= kMinMatch) {
    uint32_t table[1 << kHashBits];
    memset(table, 0xFF, sizeof(table));  // 0xFFFFFFFF = empty
    const char* match_limit = end - kMinMatch;

    while (ip <= match_limit) {
      uint32_t h = HashQuad(ip);
      uint32_t cand = table[h];
      table[h] = static_cast<uint32_t>(ip - base);
      if (cand != 0xFFFFFFFFu) {
        const char* cp = base + cand;
        size_t offset = ip - cp;
        if (offset >= 1 && offset <= kMaxOffset &&
            memcmp(cp, ip, kMinMatch) == 0) {
          // Extend the match.
          size_t len = kMinMatch;
          size_t max_len = static_cast<size_t>(end - ip);
          if (max_len > kMaxMatch) max_len = kMaxMatch;
          while (len < max_len && cp[len] == ip[len]) len++;

          EmitLiterals(lit_start, ip - lit_start, output);
          output->push_back(
              static_cast<char>(0x80 | static_cast<uint8_t>(len - kMinMatch)));
          output->push_back(static_cast<char>(offset & 0xFF));
          output->push_back(static_cast<char>((offset >> 8) & 0xFF));
          ip += len;
          lit_start = ip;
          continue;
        }
      }
      ip++;
    }
  }
  EmitLiterals(lit_start, end - lit_start, output);
}

bool GetUncompressedLength(const Slice& compressed, uint32_t* result) {
  Slice s = compressed;
  return GetVarint32(&s, result);
}

bool Uncompress(const Slice& compressed, char* output) {
  Slice s = compressed;
  uint32_t ulen;
  if (!GetVarint32(&s, &ulen)) return false;

  const char* ip = s.data();
  const char* end = ip + s.size();
  char* op = output;
  char* op_end = output + ulen;

  while (ip < end) {
    uint8_t tag = static_cast<uint8_t>(*ip++);
    if ((tag & 0x80) == 0) {
      // Literal run.
      size_t run = tag;
      if (run == 0 || ip + run > end || op + run > op_end) return false;
      memcpy(op, ip, run);
      ip += run;
      op += run;
    } else {
      // Match.
      size_t len = (tag & 0x3F) + kMinMatch;
      if (ip + 2 > end) return false;
      size_t offset = static_cast<uint8_t>(ip[0]) |
                      (static_cast<size_t>(static_cast<uint8_t>(ip[1])) << 8);
      ip += 2;
      if (offset == 0 || offset > static_cast<size_t>(op - output) ||
          op + len > op_end) {
        return false;
      }
      // Byte-wise copy: matches may overlap themselves (RLE-style).
      const char* from = op - offset;
      for (size_t i = 0; i < len; i++) op[i] = from[i];
      op += len;
    }
  }
  return op == op_end;
}

}  // namespace simplelz
}  // namespace leveldbpp
