// DedicatedSchedulerEnv: an Env wrapper that reroutes Schedule() onto a
// private worker pool instead of the process-wide single background thread
// (BackgroundScheduler in env_posix.cc).
//
// The global single-compactor model matches LevelDB, where one process runs
// one DB. A sharded server runs many: with every shard funneling flushes
// and compactions through one thread, a single shard whose flush is stuck
// on a sick disk parks that thread and starves every OTHER shard's
// background work — one slow disk becomes a fleet-wide write stall as the
// healthy shards' immutable-memtable queues fill behind work that never
// runs. ShardedDB therefore wraps each shard's Env in one of these: a
// stalled flush parks a thread only its own shard owns (DESIGN.md "Serving
// robustness").
//
// Size `threads` to the number of DB instances sharing the wrapper
// (SecondaryDB: the primary plus one per stand-alone index table). Each
// DBImpl keeps at most one background task scheduled at a time, so that
// size guarantees a runnable task never queues behind a parked one — a
// stuck PRIMARY flush cannot starve the same shard's index-table flush,
// which writers depend on (index writes keep the blocking path).
//
// The destructor finishes queued tasks, then joins the workers. Destroy
// the DBs using the wrapper first: their destructors wait for in-flight
// background work, so no task can still reference them afterwards.

#ifndef LEVELDBPP_ENV_SCHEDULER_ENV_H_
#define LEVELDBPP_ENV_SCHEDULER_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "env/thread_pool.h"

namespace leveldbpp {

class DedicatedSchedulerEnv : public Env {
 public:
  DedicatedSchedulerEnv(Env* base, int threads);
  ~DedicatedSchedulerEnv() override;

  void Schedule(void (*function)(void*), void* arg) override;

  // ---- Everything else forwards to the base Env ----
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return base_->NewWritableFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status SyncDir(const std::string& dirname) override {
    return base_->SyncDir(dirname);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void StartThread(void (*function)(void*), void* arg) override {
    base_->StartThread(function, arg);
  }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  Env* const base_;
  ThreadPool pool_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_ENV_SCHEDULER_ENV_H_
