#include "env/statistics.h"

#include <cstdio>

namespace leveldbpp {

const char* TickerName(Ticker t) {
  switch (t) {
    case kBlockRead: return "block.read.count";
    case kBlockReadBytes: return "block.read.bytes";
    case kBlockCacheHit: return "block.cache.hit";
    case kBlockCacheMiss: return "block.cache.miss";
    case kPageCacheHit: return "page.cache.hit";
    case kCompactionBytesRead: return "compaction.bytes.read";
    case kCompactionBytesWritten: return "compaction.bytes.written";
    case kCompactionCount: return "compaction.count";
    case kFlushCount: return "flush.count";
    case kWalBytesWritten: return "wal.bytes.written";
    case kBloomPrimaryChecked: return "bloom.primary.checked";
    case kBloomPrimaryUseful: return "bloom.primary.useful";
    case kBloomSecondaryChecked: return "bloom.secondary.checked";
    case kBloomSecondaryUseful: return "bloom.secondary.useful";
    case kZoneMapFilePruned: return "zonemap.file.pruned";
    case kZoneMapBlockPruned: return "zonemap.block.pruned";
    case kGetLiteCalls: return "getlite.calls";
    case kGetLiteConfirmReads: return "getlite.confirm.reads";
    case kSeekDiskReads: return "seek.disk.reads";
    case kWriteStallMicros: return "write.stall.micros";
    case kWriteSlowdownMicros: return "write.slowdown.micros";
    case kGroupCommitBatches: return "groupcommit.batches";
    case kGroupCommitWrites: return "groupcommit.writes";
    case kMultiGetBatches: return "multiget.batches";
    case kMultiGetKeys: return "multiget.keys";
    case kParallelTasks: return "query.parallel.tasks";
    case kParallelWaitMicros: return "query.parallel.wait.micros";
    case kFaultInjectedErrors: return "fault.injected.errors";
    case kRecoveryWalRecords: return "recovery.wal.records";
    case kRecoveryTornTailBytes: return "recovery.torn.tail.bytes";
    case kCorruptionBlocksDetected: return "corruption.blocks.detected";
    case kCorruptionBlocksQuarantined:
      return "corruption.blocks.quarantined";
    case kRepairTablesSalvaged: return "repair.tables.salvaged";
    case kRepairTablesDropped: return "repair.tables.dropped";
    case kIndexRebuildEntries: return "index.rebuild.entries";
    case kBgErrorAutorecovered: return "bg.error.autorecovered";
    case kIngestFiles: return "ingest.files";
    case kIngestBytes: return "ingest.bytes";
    case kIngestKeys: return "ingest.keys";
    case kIndexDeferredOps: return "index.deferred.ops";
    case kIndexDeferredApplies: return "index.deferred.applies";
    case kTimestampValidations: return "index.timestamp.validations";
    case kTimestampRejects: return "index.timestamp.rejects";
    case kShardWritesRouted: return "shard.writes.routed";
    case kShardLookupFanouts: return "shard.lookup.fanouts";
    case kShardMergeCandidates: return "shard.merge.candidates";
    case kShardMergeEarlyStops: return "shard.merge.early.stops";
    case kServeConnections: return "serve.connections";
    case kServeRequests: return "serve.requests";
    case kServeMalformedFrames: return "serve.frames.malformed";
    case kServeBytesRead: return "serve.bytes.read";
    case kServeBytesWritten: return "serve.bytes.written";
    case kIterCreated: return "iter.created";
    case kIterSnapshotsAcquired: return "iter.snapshots.acquired";
    case kIterSnapshotsReleased: return "iter.snapshots.released";
    case kSortedViewBuilds: return "iter.sortedview.builds";
    case kSortedViewBuildEntries: return "iter.sortedview.build.entries";
    case kSortedViewUsed: return "iter.sortedview.used";
    case kSortedViewFallbacks: return "iter.sortedview.fallbacks";
    case kServeRequestsShed: return "serve.requests.shed";
    case kServeDeadlineExceeded: return "serve.deadline.exceeded";
    case kServeRetriesSuggested: return "serve.retries.suggested";
    case kShardHealthChecks: return "shard.health.checks";
    case kLookupDegraded: return "lookup.degraded";
    case kTickerCount: break;
  }
  return "unknown";
}

const char* HistogramName(HistogramType h) {
  switch (h) {
    case kHistPutMicros: return "put.micros";
    case kHistGetMicros: return "get.micros";
    case kHistLookupNoIndexMicros: return "lookup.noindex.micros";
    case kHistLookupEmbeddedMicros: return "lookup.embedded.micros";
    case kHistLookupLazyMicros: return "lookup.lazy.micros";
    case kHistLookupEagerMicros: return "lookup.eager.micros";
    case kHistLookupCompositeMicros: return "lookup.composite.micros";
    case kHistFlushMicros: return "flush.micros";
    case kHistCompactionMicros: return "compaction.micros";
    case kHistWalSyncMicros: return "wal.sync.micros";
    case kHistFlushQueueDepth: return "flush.queue.depth";
    case kHistSortedViewBuildMicros: return "sortedview.build.micros";
    case kHistogramCount: break;
  }
  return "unknown";
}

std::string Statistics::HistogramsToString() const {
  std::lock_guard<std::mutex> lock(hist_mu_);
  std::string out;
  char buf[256];
  for (uint32_t i = 0; i < kHistogramCount; i++) {
    const Histogram& h = histograms_[i];
    if (h.Count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-28s count %8llu  avg %10.1f  p50 %10.1f  p75 %10.1f  "
                  "max %10.1f\n",
                  HistogramName(static_cast<HistogramType>(i)),
                  static_cast<unsigned long long>(h.Count()), h.Average(),
                  h.Median(), h.Percentile(75), h.Max());
    out.append(buf);
  }
  return out;
}

std::string Statistics::ToString() const {
  std::string out;
  char buf[128];
  for (uint32_t i = 0; i < kTickerCount; i++) {
    uint64_t v = Get(static_cast<Ticker>(i));
    if (v != 0) {
      std::snprintf(buf, sizeof(buf), "%-28s %12llu\n",
                    TickerName(static_cast<Ticker>(i)),
                    static_cast<unsigned long long>(v));
      out.append(buf);
    }
  }
  return out;
}

}  // namespace leveldbpp
