// Statistics: engine-wide event counters.
//
// The paper's analysis figures (9c, 13, 14, 15) plot *cumulative disk I/O
// counts*, which are hardware independent. Every disk access and pruning
// decision in the engine increments one of these tickers; benches snapshot
// them around operation groups to attribute I/O to GET / PUT / LOOKUP /
// compaction exactly as the paper does.

#ifndef LEVELDBPP_ENV_STATISTICS_H_
#define LEVELDBPP_ENV_STATISTICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/histogram.h"

namespace leveldbpp {

enum Ticker : uint32_t {
  kBlockRead = 0,        // data/meta block fetched from a file
  kBlockReadBytes,       // bytes of the above
  kBlockCacheHit,        // block served from the block cache
  kBlockCacheMiss,
  kPageCacheHit,         // block served from the simulated OS buffer cache
  kCompactionBytesRead,  // bytes read by compactions (incl. flushes)
  kCompactionBytesWritten,
  kCompactionCount,
  kFlushCount,
  kWalBytesWritten,
  kBloomPrimaryChecked,   // primary-key bloom probes
  kBloomPrimaryUseful,    // probes that returned "definitely absent"
  kBloomSecondaryChecked, // embedded secondary-attribute bloom probes
  kBloomSecondaryUseful,
  kZoneMapFilePruned,     // whole SSTable skipped by file-level zone map
  kZoneMapBlockPruned,    // single block skipped by block-level zone map
  kGetLiteCalls,
  kGetLiteConfirmReads,   // rare confirming reads after a bloom positive
  kSeekDiskReads,         // blocks read while seeking iterators
  kWriteStallMicros,      // writers parked on the stop ladder (imm full / L0)
  kWriteSlowdownMicros,   // 1ms delays injected at the L0 slowdown trigger
  kGroupCommitBatches,    // combined WAL appends issued by the writer queue
  kGroupCommitWrites,     // Write() calls satisfied by those appends
  kMultiGetBatches,       // MultiGet calls
  kMultiGetKeys,          // keys looked up across those calls
  kParallelTasks,         // query tasks executed on pool workers
  kParallelWaitMicros,    // caller time blocked on the fan-out barrier
  kFaultInjectedErrors,   // I/O errors injected by FaultInjectionEnv
  kRecoveryWalRecords,    // WAL batch records replayed during recovery
  kRecoveryTornTailBytes, // trailing WAL bytes skipped as a torn tail
  kCorruptionBlocksDetected,    // checksum mismatches seen by ReadBlock
  kCorruptionBlocksQuarantined, // distinct blocks entered into quarantine
  kRepairTablesSalvaged,  // tables RepairDB kept (possibly rewritten)
  kRepairTablesDropped,   // tables RepairDB archived as unreadable
  kIndexRebuildEntries,   // postings re-derived by RebuildIndex
  kBgErrorAutorecovered,  // background errors cleared by retry/Resume
  kIngestFiles,           // SSTables spliced in by IngestExternalFiles
  kIngestBytes,           // bytes of the above
  kIngestKeys,            // records ingested (memtable+WAL bypassed)
  kIndexDeferredOps,      // index ops buffered by kDeferredBatch maintenance
  kIndexDeferredApplies,  // deferred-buffer drains that applied >= 1 op
  kTimestampValidations,  // candidate checks done via IsNewestVersion only
  kTimestampRejects,      // of those, candidates rejected without a fetch
  kShardWritesRouted,     // PUT/DELETE calls routed to a shard by ShardedDB
  kShardLookupFanouts,    // cross-shard LOOKUP/RANGELOOKUP fan-outs
  kShardMergeCandidates,  // per-shard results examined by the cross-shard merge
  kShardMergeEarlyStops,  // shard result lists cut short by WouldAdmit
  kServeConnections,      // connections accepted by the protocol server
  kServeRequests,         // request frames decoded and executed
  kServeMalformedFrames,  // frames rejected by the wire codec
  kServeBytesRead,        // payload + header bytes read off connections
  kServeBytesWritten,     // response bytes written to connections
  kIterCreated,           // public DB iterators created (NewIterator)
  kIterSnapshotsAcquired,  // GetSnapshot calls
  kIterSnapshotsReleased,  // ReleaseSnapshot calls
  kSortedViewBuilds,       // sorted views built after compaction/ingest
  kSortedViewBuildEntries,  // internal entries swept into sorted views
  kSortedViewUsed,         // iterators that read levels >= 1 via the view
  kSortedViewFallbacks,  // iterators that fell back to the per-level heap
  kServeRequestsShed,      // requests refused with RETRY_LATER (admission
                           // control or a no_stall write hitting the ladder)
  kServeDeadlineExceeded,  // requests answered DEADLINE_EXCEEDED
  kServeRetriesSuggested,  // responses that carried a retry-after hint
  kShardHealthChecks,      // ShardHealth() probes (incl. the HEALTH wire op)
  kLookupDegraded,         // fan-out queries answered with partial results
  kTickerCount,
};

/// Human-readable ticker names, index-aligned with the Ticker enum.
const char* TickerName(Ticker t);

/// Latency histograms, one per operation class the paper times (Figures
/// 8-12 plot latency distributions per index variant). Values are recorded
/// in microseconds.
enum HistogramType : uint32_t {
  kHistPutMicros = 0,          // DBImpl::Write, queue wait included
  kHistGetMicros,              // DBImpl::Get (public point lookups only)
  kHistLookupNoIndexMicros,    // SecondaryDB::Lookup/RangeLookup per variant
  kHistLookupEmbeddedMicros,
  kHistLookupLazyMicros,
  kHistLookupEagerMicros,
  kHistLookupCompositeMicros,
  kHistFlushMicros,            // memtable flush (CompactMemTable)
  kHistCompactionMicros,       // merging compaction (DoCompactionWork)
  kHistWalSyncMicros,          // fsync of the WAL inside Write
  kHistFlushQueueDepth,        // imm-queue depth after each rotation (count,
                               // not micros; depth > 1 only with pipelining)
  kHistSortedViewBuildMicros,  // one sorted-view build sweep
  kHistogramCount,
};

/// Human-readable histogram names, index-aligned with HistogramType.
const char* HistogramName(HistogramType h);

namespace perf_internal {
/// Thread-local mirror that Statistics::Record also adds into when a
/// PerfContext is active on the calling thread (see util/perf_context.h).
/// Null — the default — costs the hot path one predictable branch. Points at
/// PerfContext::tickers.data(), so per-query attribution sees every ticker
/// recorded by this thread regardless of WHICH Statistics object it hit
/// (primary DB and each standalone index own separate ones).
extern thread_local uint64_t* tls_tickers;
}  // namespace perf_internal

class Statistics {
 public:
  void Record(Ticker t, uint64_t count = 1) {
    tickers_[t].fetch_add(count, std::memory_order_relaxed);
    if (perf_internal::tls_tickers != nullptr) {
      perf_internal::tls_tickers[t] += count;
    }
  }

  uint64_t Get(Ticker t) const {
    return tickers_[t].load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& t : tickers_) t.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(hist_mu_);
    for (auto& h : histograms_) h.Clear();
  }

  /// Record one latency sample (microseconds) into a histogram.
  void RecordHistogram(HistogramType h, double value) {
    std::lock_guard<std::mutex> lock(hist_mu_);
    histograms_[h].Add(value);
  }

  /// Consistent copy of one histogram's current state.
  Histogram GetHistogram(HistogramType h) const {
    std::lock_guard<std::mutex> lock(hist_mu_);
    return histograms_[h];
  }

  /// Multi-line dump of all non-zero tickers.
  std::string ToString() const;

  /// Multi-line dump of all non-empty histograms (count/avg/quantiles).
  std::string HistogramsToString() const;

 private:
  std::array<std::atomic<uint64_t>, kTickerCount> tickers_{};
  mutable std::mutex hist_mu_;
  Histogram histograms_[kHistogramCount];  // guarded by hist_mu_
};

/// Snapshot of all tickers; subtract two snapshots to attribute I/O to an
/// operation window.
struct StatsSnapshot {
  std::array<uint64_t, kTickerCount> values{};

  static StatsSnapshot Take(const Statistics& s) {
    StatsSnapshot snap;
    for (uint32_t i = 0; i < kTickerCount; i++) {
      snap.values[i] = s.Get(static_cast<Ticker>(i));
    }
    return snap;
  }

  uint64_t Delta(const StatsSnapshot& earlier, Ticker t) const {
    return values[t] - earlier.values[t];
  }
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_ENV_STATISTICS_H_
