// ThreadPool / WaitGroup: the fixed-size worker pool behind the parallel
// read path (Options::read_parallelism), living alongside the single-thread
// BackgroundScheduler in env_posix.cc.
//
// Design constraints (see DESIGN.md "Parallel read path"):
//  * One process-wide pool shared by every DB instance, sized lazily to the
//    largest parallelism any caller has requested — mirroring how all DBs
//    share one background compaction thread.
//  * Submit/wait-group API only: callers submit closures and wait on a
//    WaitGroup barrier. There are no futures and no task return values; a
//    task communicates through state it owns exclusively (e.g. a per-task
//    output slot), and the WaitGroup's release/acquire edge publishes it.
//  * The pool is for BOUNDED fan-out (a query resolving its candidates),
//    never for long-running work; tasks must not block on other tasks.
//
// ParallelRun is the one entry point the engine uses: it shares a task list
// between the calling thread and up to (parallelism - 1) pool workers, so
// parallelism == 1 (or a single task) runs entirely inline with zero
// scheduling overhead — keeping the default sequential paths byte-identical
// to the pre-pool engine.

#ifndef LEVELDBPP_ENV_THREAD_POOL_H_
#define LEVELDBPP_ENV_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace leveldbpp {

class Statistics;

/// Countdown barrier: Add(n) before submitting n tasks, each task calls
/// Done(), the coordinator blocks in Wait() until the count reaches zero.
/// The mutex/condvar pair gives Wait() acquire semantics over everything the
/// tasks wrote before Done().
class WaitGroup {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

/// Fixed-size FIFO worker pool. Threads are started lazily on first Submit
/// and live for the rest of the process (the shared instance is never
/// destroyed, matching BackgroundScheduler).
///
/// Workers SPIN briefly before parking on the condvar: parallel-read tasks
/// are microsecond-scale, and a condvar wake (tens to hundreds of
/// microseconds on a loaded kernel) costs more than a typical task, so a
/// freshly idle worker polls for follow-on work first. Only the first
/// dispatch after a genuinely idle period pays the wake. Spinning is
/// disabled on single-CPU hosts, where polling would steal the core from
/// the thread producing the work.
class ThreadPool {
 public:
  /// Process-wide shared pool. Grows (never shrinks) to the largest
  /// `min_threads` ever requested; the first caller starts the workers.
  static ThreadPool* Shared(int min_threads);

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `fn` for execution on some worker thread.
  void Submit(std::function<void()> fn);

  /// Ensure at least `n` worker threads exist.
  void EnsureThreads(int n);

  int NumThreads() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  // Mirrors queue_.size(); lets idle workers poll for work without the lock.
  std::atomic<size_t> pending_{0};
  std::atomic<bool> shutting_down_{false};
};

/// Run `tasks` with up to `parallelism` concurrent executors: the calling
/// thread plus at most (parallelism - 1) pool workers, all draining one
/// shared index. With parallelism <= 1 or a single task, every task runs
/// inline on the caller in order — no pool, no synchronization, no side
/// effects on timing or I/O attribution.
///
/// The caller returns as soon as every task has FINISHED — it never waits
/// for helpers to arrive, only for claimed tasks to complete (a brief spin,
/// then a condvar park signalled by whichever executor finishes the last
/// task). Helpers that arrive after the region is drained touch only a
/// refcounted control block, never the caller's stack.
///
/// Records kParallelTasks (tasks executed inside a parallel region) and
/// kParallelWaitMicros (time the caller spent waiting after finishing its
/// own share) on `stats` when non-null.
void ParallelRun(std::vector<std::function<void()>>* tasks, int parallelism,
                 Statistics* stats);

}  // namespace leveldbpp

#endif  // LEVELDBPP_ENV_THREAD_POOL_H_
