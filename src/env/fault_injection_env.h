// FaultInjectionEnv: an Env wrapper that simulates crashes and injects I/O
// errors, for the crash-recovery harness (tests/fault_injection_test.cc,
// tests/crash_recovery_test.cc, tests/randomized_crash_test.cc).
//
// Three capabilities, composable and independent:
//
//  1. Crash simulation. Every file written through the wrapper tracks how
//     many of its bytes have been Sync()ed. SimulateCrash() rewrites every
//     tracked file in the base Env down to its durable prefix:
//       * kDropUnsynced — keep exactly the synced bytes (clean power loss),
//       * kTornTail    — additionally keep a seeded-random prefix of the
//                        unsynced tail, cut at an arbitrary byte boundary
//                        (a torn write: the device persisted part of the
//                        in-flight data). Prefix semantics are preserved —
//                        synced data always survives, and what survives of
//                        the unsynced tail is always a contiguous prefix.
//     Rename carries the durability state to the new name (the engine only
//     renames fully-synced files, e.g. CURRENT installation); Remove forgets
//     it. Metadata operations themselves (create/rename/remove) are treated
//     as immediately durable — the engine's recovery protocol must not
//     depend on unsynced *data*, which is exactly what the harness checks.
//     SetTrackMetadataSync(true) opts into a stricter model where renames
//     are volatile until the parent directory is SyncDir()ed.
//
//  2. Deterministic error injection. FailAfter(n, mask) lets the next n
//     operations matching `mask` succeed; the (n+1)th and every later
//     matching operation fails with Status::IOError, until ClearFaults().
//     Counting is deterministic, so "crash at syscall N" test matrices are
//     reproducible. FailWithProbability(one_in, mask) is the seeded
//     randomized variant. Injected failures perform NO side effect on the
//     base Env (the append/sync/create never happens).
//
//  3. Accounting. op_count() says how many matching operations ran (probe
//     a workload once to learn its syscall range, then sweep crash points
//     across it). Injected errors are counted in the optional Statistics as
//     kFaultInjectedErrors.
//
// Thread-safe. Does not take ownership of the base Env.

#ifndef LEVELDBPP_ENV_FAULT_INJECTION_ENV_H_
#define LEVELDBPP_ENV_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"
#include "env/statistics.h"
#include "util/random.h"

namespace leveldbpp {

class FaultInjectionEnv : public Env {
 public:
  /// Operation classes for FailAfter/FailWithProbability masks.
  enum OpKind : uint32_t {
    kOpAppend = 1u << 0,       // WritableFile::Append / Flush
    kOpSync = 1u << 1,         // WritableFile::Sync
    kOpNewWritable = 1u << 2,  // Env::NewWritableFile
    kOpRename = 1u << 3,       // Env::RenameFile
    kOpRemove = 1u << 4,       // Env::RemoveFile
    kOpSyncDir = 1u << 5,      // Env::SyncDir
    kOpAllWrites = 0xffffffffu,
  };

  enum class CrashMode {
    kDropUnsynced,  // Keep exactly the synced prefix of every file.
    kTornTail,      // Also keep a random prefix of each unsynced tail.
  };

  /// `stats`, when non-null, receives kFaultInjectedErrors. `seed` drives
  /// kTornTail cut points and probabilistic failures.
  explicit FaultInjectionEnv(Env* base, uint32_t seed = 301,
                             Statistics* stats = nullptr);

  // ---- Fault control ----

  /// Let `n` more operations matching `mask` succeed; fail every matching
  /// operation after that (sticky) until ClearFaults(). n == 0 fails the
  /// next matching operation.
  void FailAfter(uint64_t n, uint32_t mask = kOpAllWrites);

  /// Fail each matching operation with probability 1/one_in (seeded).
  void FailWithProbability(uint32_t one_in, uint32_t mask = kOpAllWrites);

  /// Stop injecting errors (tracked durability state is kept).
  void ClearFaults();

  /// True once an injected failure has tripped (the "disk is gone" state).
  bool FaultsTripped() const;

  /// Number of interceptable operations (append/flush/sync/create/rename/
  /// remove) observed so far, successful or failed, regardless of the
  /// armed mask. Counts from construction or the last ResetOpCount. Probe a
  /// workload once to learn its op range, then FailAfter(n, kOpAllWrites)
  /// sweeps crash points across exactly this counter.
  uint64_t op_count() const;
  void ResetOpCount();

  /// Rewrite every tracked file in the base Env to its post-crash content.
  /// All open handles must be closed first (destroy the DB before calling).
  Status SimulateCrash(CrashMode mode);

  /// Forget all durability tracking (files become "fully durable as-is").
  void UntrackAll();

  // ---- Corruption injection ----

  /// XOR `nbytes` bytes of `fname` starting at `offset` with seeded non-zero
  /// masks (so every targeted byte really changes). Goes straight to the
  /// base Env: the write is neither counted nor failed, and durability
  /// tracking is untouched — this models bit rot on the medium, not an I/O
  /// operation by the engine. Fails if `offset` is at or past EOF; `nbytes`
  /// is clipped to the file end.
  Status CorruptFile(const std::string& fname, uint64_t offset,
                     size_t nbytes);

  // ---- Directory-sync modeling ----

  /// When enabled, a RenameFile is treated as volatile until the parent
  /// directory is SyncDir()ed: SimulateCrash rolls unsynced renames back to
  /// the pre-rename state (newest first), exactly the way a journaling FS
  /// may order an un-fsynced directory update behind the crash. Default
  /// off, preserving the original model where metadata ops are immediately
  /// durable.
  void SetTrackMetadataSync(bool track);

  // ---- Env interface (forwards to base, with injection/tracking) ----
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status SyncDir(const std::string& dirname) override;
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void Schedule(void (*function)(void*), void* arg) override {
    base_->Schedule(function, arg);
  }
  void StartThread(void (*function)(void*), void* arg) override {
    base_->StartThread(function, arg);
  }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  friend class FaultInjectionWritableFile;

  // Durability bookkeeping for one tracked file.
  struct FileState {
    uint64_t length = 0;       // Bytes appended through the wrapper
    uint64_t synced_length = 0;  // Prefix known durable
  };

  // A rename whose parent directory has not been SyncDir()ed yet (only
  // recorded when SetTrackMetadataSync(true)). Holds everything needed to
  // roll the rename back on SimulateCrash.
  struct PendingRename {
    std::string dir;      // Parent directory of `target`
    std::string src;
    std::string target;
    std::string src_content;         // `src` bytes before the rename
    std::string target_old_content;  // `target` bytes before (if it existed)
    bool target_existed = false;
  };

  /// Returns the injected error for one matching operation, or OK. Counts
  /// the operation either way.
  Status MaybeInjectError(uint32_t kind);

  // Called by FaultInjectionWritableFile under mu_.
  void OnAppend(const std::string& fname, uint64_t bytes);
  void OnSync(const std::string& fname);

  Env* const base_;
  Statistics* const stats_;

  mutable std::mutex mu_;
  Random rnd_;                             // Guarded by mu_
  std::map<std::string, FileState> files_;  // Guarded by mu_
  bool track_metadata_sync_ = false;        // Guarded by mu_
  std::vector<PendingRename> pending_renames_;  // Guarded by mu_

  // Error-injection state (guarded by mu_).
  uint32_t fail_mask_ = 0;
  uint64_t ops_until_failure_ = 0;  // Meaningful when counting_ is true
  bool counting_ = false;           // FailAfter armed
  uint32_t fail_one_in_ = 0;        // Probabilistic mode when > 0
  bool tripped_ = false;            // Sticky failure engaged
  uint64_t op_count_ = 0;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_ENV_FAULT_INJECTION_ENV_H_
