// Simulated OS buffer cache: wraps another Env and keeps an LRU set of
// (file id, 4KB page) entries. A random-access read whose pages are all
// resident counts as kPageCacheHit; otherwise the missing pages are "faulted
// in" (inserted, possibly evicting) and the read is passed through.
//
// The paper attributes the Figure-12 performance inflection (at ~RAM-size
// data) to OS buffer cache misses; this wrapper lets benches reproduce that
// behaviour deterministically with a configurable "RAM" size.

#include <list>
#include <mutex>
#include <unordered_map>

#include "env/env.h"
#include "env/statistics.h"

namespace leveldbpp {

namespace {

constexpr uint64_t kPageSize = 4096;

class PageCache {
 public:
  PageCache(uint64_t capacity_bytes, Statistics* stats)
      : capacity_pages_(capacity_bytes / kPageSize), stats_(stats) {}

  // Returns true if every page of [offset, offset+n) was already resident.
  // Either way the pages end up resident afterwards.
  bool Access(uint64_t file_id, uint64_t offset, size_t n) {
    if (capacity_pages_ == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    bool all_hit = true;
    uint64_t first = offset / kPageSize;
    uint64_t last = (offset + (n == 0 ? 0 : n - 1)) / kPageSize;
    for (uint64_t p = first; p <= last; p++) {
      uint64_t key = (file_id << 40) ^ p;
      auto it = map_.find(key);
      if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
      } else {
        all_hit = false;
        lru_.push_front(key);
        map_[key] = lru_.begin();
        if (lru_.size() > capacity_pages_) {
          map_.erase(lru_.back());
          lru_.pop_back();
        }
      }
    }
    if (all_hit && stats_ != nullptr) stats_->Record(kPageCacheHit);
    return all_hit;
  }

  void Drop(uint64_t file_id) {
    std::lock_guard<std::mutex> lock(mu_);
    // Compaction output replaces inputs at new addresses; invalidating the
    // deleted file's pages models the cache-invalidation effect the paper
    // describes ("cached data are invalidated since referencing addresses
    // changed").
    for (auto it = lru_.begin(); it != lru_.end();) {
      if ((*it >> 40) == (file_id & 0xFFFFFF)) {
        map_.erase(*it);
        it = lru_.erase(it);
      } else {
        ++it;
      }
    }
  }

  uint64_t NextFileId() { return next_file_id_.fetch_add(1); }

 private:
  std::mutex mu_;
  uint64_t capacity_pages_;
  Statistics* stats_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  std::atomic<uint64_t> next_file_id_{1};
};

class SimRandomAccessFile final : public RandomAccessFile {
 public:
  SimRandomAccessFile(std::unique_ptr<RandomAccessFile> base, PageCache* cache,
                      uint64_t file_id)
      : base_(std::move(base)), cache_(cache), file_id_(file_id) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    cache_->Access(file_id_, offset, n);
    return base_->Read(offset, n, result, scratch);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  PageCache* cache_;
  uint64_t file_id_;
};

class PageCacheSimEnv final : public Env {
 public:
  PageCacheSimEnv(Env* base, uint64_t capacity_bytes, Statistics* stats)
      : base_(base), cache_(capacity_bytes, stats) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::unique_ptr<RandomAccessFile> inner;
    Status s = base_->NewRandomAccessFile(fname, &inner);
    if (!s.ok()) return s;
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = ids_.find(fname);
      if (it == ids_.end()) {
        id = cache_.NextFileId();
        ids_[fname] = id;
      } else {
        id = it->second;
      }
    }
    result->reset(new SimRandomAccessFile(std::move(inner), &cache_, id));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return base_->NewWritableFile(fname, result);
  }

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = ids_.find(fname);
      if (it != ids_.end()) {
        cache_.Drop(it->second);
        ids_.erase(it);
      }
    }
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& d) override {
    return base_->CreateDir(d);
  }
  Status RemoveDir(const std::string& d) override {
    return base_->RemoveDir(d);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src, const std::string& dst) override {
    return base_->RenameFile(src, dst);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void Schedule(void (*function)(void*), void* arg) override {
    base_->Schedule(function, arg);
  }
  void StartThread(void (*function)(void*), void* arg) override {
    base_->StartThread(function, arg);
  }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  Env* base_;
  PageCache cache_;
  std::mutex mu_;
  std::unordered_map<std::string, uint64_t> ids_;
};

}  // namespace

Env* NewPageCacheSimEnv(Env* base, uint64_t capacity_bytes,
                        Statistics* stats) {
  return new PageCacheSimEnv(base, capacity_bytes, stats);
}

}  // namespace leveldbpp
