// Env: operating-system abstraction (files, directories, clock).
//
// Two implementations ship with the engine:
//  * Env::Posix()  — real files on disk (benches, examples).
//  * NewMemEnv()   — fully in-memory filesystem (tests: fast, hermetic).
//
// A third wrapper, NewPageCacheSimEnv(), models an OS buffer cache of fixed
// capacity in front of another Env; it is what lets the benches reproduce the
// paper's Figure-12 inflection where the dataset outgrows RAM.

#ifndef LEVELDBPP_ENV_ENV_H_
#define LEVELDBPP_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

/// Sequential read-only file (WAL/MANIFEST replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Read up to n bytes. Sets *result to the data read (may point into
  /// scratch). Returns OK on success even at EOF (empty result).
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// Random-access read-only file (SSTables).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Read n bytes from `offset`. *result may point into scratch.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

/// Append-only writable file (WAL, MANIFEST, SSTable under construction).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX environment singleton.
  static Env* Posix();

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  /// Store in *result the names (not paths) of the children of `dir`.
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Fsync the directory itself so that metadata operations inside it
  /// (renames, file creations) survive power loss. POSIX requires this for
  /// the CURRENT-file install protocol; filesystems without the concept
  /// (and the in-memory env, whose metadata ops are atomic) use the
  /// default no-op.
  virtual Status SyncDir(const std::string& dirname) {
    (void)dirname;
    return Status::OK();
  }

  /// Microseconds since some fixed epoch; monotonic enough for latency
  /// measurement.
  virtual uint64_t NowMicros() = 0;

  // ---- Threading (background compaction support) ----
  //
  // The default implementations (shared by PosixEnv and the in-memory test
  // env) run scheduled work on one lazily started, process-wide background
  // thread — the single-compactor model DBImpl's concurrent mode relies on.

  /// Arrange to run (*function)(arg) once on the background thread. Work
  /// items run in FIFO order; the thread is started on first use and lives
  /// for the rest of the process.
  virtual void Schedule(void (*function)(void* arg), void* arg);

  /// Start a new detached thread running (*function)(arg).
  virtual void StartThread(void (*function)(void* arg), void* arg);

  /// Block the calling thread for roughly `micros` microseconds (write
  /// slowdown ladder).
  virtual void SleepForMicroseconds(int micros);
};

/// In-memory filesystem for tests. Caller owns the result.
Env* NewMemEnv();

/// Wrap `base` with a simulated OS page cache of `capacity_bytes` (LRU over
/// 4KB pages). Random-access reads that hit the simulated cache are counted
/// as kPageCacheHit instead of going through as "disk" reads, letting the
/// benches model a machine whose RAM is smaller than the dataset.
/// Does not take ownership of `base`. Caller owns the result.
class Statistics;
Env* NewPageCacheSimEnv(Env* base, uint64_t capacity_bytes, Statistics* stats);

}  // namespace leveldbpp

#endif  // LEVELDBPP_ENV_ENV_H_
