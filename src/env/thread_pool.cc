#include "env/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "env/statistics.h"
#include "util/perf_context.h"

namespace leveldbpp {

namespace {

// Spinning is only useful when a spare hardware thread exists to observe it;
// on a single-CPU host every cycle spent polling is stolen from the thread
// doing the actual work.
bool SpinUseful() {
  static const bool useful = std::thread::hardware_concurrency() > 1;
  return useful;
}

// How long an idle worker polls for new work before parking on the condvar.
// Back-to-back ParallelRun regions (one per level barrier, one per MultiGet
// chunk) arrive well inside this window, so steady-state dispatch costs a
// single atomic load instead of a condvar wake.
constexpr auto kIdleSpin = std::chrono::microseconds(100);

}  // namespace

ThreadPool* ThreadPool::Shared(int min_threads) {
  static ThreadPool* pool = new ThreadPool(0);
  pool->EnsureThreads(min_threads);
  return pool;
}

ThreadPool::ThreadPool(int num_threads) { EnsureThreads(num_threads); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    pending_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
}

void ThreadPool::EnsureThreads(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < n) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

int ThreadPool::NumThreads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::WorkerLoop() {
  while (true) {
    // Spin-then-park (see the class comment): poll the lock-free pending
    // count for a bounded window before taking the mutex. cv_.wait's
    // predicate re-check means a task spotted here is claimed without
    // sleeping.
    if (SpinUseful() && pending_.load(std::memory_order_acquire) == 0 &&
        !shutting_down_.load(std::memory_order_acquire)) {
      const auto park_at = std::chrono::steady_clock::now() + kIdleSpin;
      while (pending_.load(std::memory_order_acquire) == 0 &&
             !shutting_down_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < park_at) {
      }
    }
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() {
        return shutting_down_.load(std::memory_order_relaxed) ||
               !queue_.empty();
      });
      if (queue_.empty()) return;  // Only on shutdown
      fn = std::move(queue_.front());
      queue_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    fn();
  }
}

void ParallelRun(std::vector<std::function<void()>>* tasks, int parallelism,
                 Statistics* stats) {
  const size_t n = tasks->size();
  if (n == 0) return;
  if (parallelism <= 1 || n == 1) {
    // Sequential fast path: in-order, on the caller, no synchronization.
    for (auto& task : *tasks) task();
    return;
  }

  // Work-sharing: the caller plus (helpers) pool workers drain one shared
  // counter, so a slow task never leaves the other executors idle while
  // queued tasks remain.
  const int helpers =
      static_cast<int>(std::min<size_t>(parallelism - 1, n - 1));
  ThreadPool* pool = ThreadPool::Shared(helpers);

  // Heap-allocated, refcounted control block. The caller waits only until
  // every task has FINISHED, not until every helper has arrived — a helper
  // showing up after the region drained sees next >= n and touches nothing
  // but this block, so the caller's stack (and `tasks`) may be long gone.
  struct Region {
    std::vector<std::function<void()>>* tasks;
    size_t n;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    // Per-query attribution across the fan-out: when the caller had a
    // PerfContext active, every task runs under a task-local context that is
    // merged here (before its `done` increment, so the caller's barrier also
    // orders the merges) and folded back into the caller's context after the
    // barrier. Pool workers never enable a context of their own.
    bool perf_enabled = false;
    std::mutex perf_mu;
    PerfContext merged;  // guarded by perf_mu
  };
  auto region = std::make_shared<Region>();
  region->tasks = tasks;
  region->n = n;
  region->perf_enabled = CurrentThreadPerfContext() != nullptr;

  auto drain = [](Region* r) {
    while (true) {
      const size_t i = r->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= r->n) break;
      if (r->perf_enabled) {
        PerfContext local;
        PerfContext* prev = SwapThreadPerfContext(&local);
        (*r->tasks)[i]();
        SwapThreadPerfContext(prev);
        std::lock_guard<std::mutex> lock(r->perf_mu);
        r->merged.MergeFrom(local);
      } else {
        (*r->tasks)[i]();
      }
      // Release so the caller's acquire-load of `done` publishes everything
      // this task wrote.
      if (r->done.fetch_add(1, std::memory_order_release) + 1 == r->n) {
        // Last task overall: wake the caller if it parked. Taking the lock
        // before notifying closes the race with the caller's predicate
        // check.
        std::lock_guard<std::mutex> lock(r->mu);
        r->cv.notify_all();
      }
    }
  };
  for (int h = 0; h < helpers; h++) {
    // `region` captured by value: keeps the block alive past the caller's
    // return.
    pool->Submit([region, drain]() { drain(region.get()); });
  }
  drain(region.get());

  const auto wait_start = std::chrono::steady_clock::now();
  if (region->done.load(std::memory_order_acquire) < n) {
    // The remaining work is at most one in-flight task per helper
    // (unclaimed tasks would have been claimed by the caller's drain).
    // Spin briefly for the common a-few-microseconds-left case, then park;
    // tasks that block on real I/O wake us via the region condvar.
    if (SpinUseful()) {
      const auto park_at =
          std::chrono::steady_clock::now() + std::chrono::microseconds(20);
      while (region->done.load(std::memory_order_acquire) < n &&
             std::chrono::steady_clock::now() < park_at) {
      }
    }
    if (region->done.load(std::memory_order_acquire) < n) {
      std::unique_lock<std::mutex> lock(region->mu);
      region->cv.wait(lock, [&]() {
        return region->done.load(std::memory_order_acquire) >= n;
      });
    }
  }
  if (region->perf_enabled) {
    PerfContext* pc = CurrentThreadPerfContext();
    std::lock_guard<std::mutex> lock(region->perf_mu);
    pc->MergeFrom(region->merged);
  }
  if (stats != nullptr) {
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - wait_start);
    // Total tasks executed inside a parallel region (caller + helpers) —
    // which thread ran each one is a race, the count is not.
    stats->Record(kParallelTasks, static_cast<uint64_t>(n));
    stats->Record(kParallelWaitMicros,
                  static_cast<uint64_t>(waited.count()));
  }
}

}  // namespace leveldbpp
