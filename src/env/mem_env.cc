// In-memory Env for hermetic tests. Files are shared_ptr<string> blobs;
// directory structure is inferred from path prefixes.

#include <algorithm>
#include <map>
#include <mutex>

#include "env/env.h"

namespace leveldbpp {

namespace {

struct FileState {
  std::string contents;
};

using FileStateRef = std::shared_ptr<FileState>;

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(FileStateRef file)
      : file_(std::move(file)), pos_(0) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    const std::string& data = file_->contents;
    if (pos_ >= data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = std::min(n, data.size() - pos_);
    memcpy(scratch, data.data() + pos_, avail);
    *result = Slice(scratch, avail);
    pos_ += avail;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ = std::min<uint64_t>(file_->contents.size(), pos_ + n);
    return Status::OK();
  }

 private:
  FileStateRef file_;
  uint64_t pos_;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileStateRef file) : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    const std::string& data = file_->contents;
    if (offset > data.size()) {
      *result = Slice();
      return Status::IOError("read past end of file");
    }
    size_t avail = std::min<uint64_t>(n, data.size() - offset);
    memcpy(scratch, data.data() + offset, avail);
    *result = Slice(scratch, avail);
    return Status::OK();
  }

 private:
  FileStateRef file_;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(FileStateRef file) : file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    file_->contents.append(data.data(), data.size());
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }

 private:
  FileStateRef file_;
};

class MemEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      result->reset();
      return Status::NotFound(fname);
    }
    result->reset(new MemSequentialFile(it->second));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      result->reset();
      return Status::NotFound(fname);
    }
    result->reset(new MemRandomAccessFile(it->second));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto file = std::make_shared<FileState>();
    files_[fname] = file;
    result->reset(new MemWritableFile(std::move(file)));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(fname) != 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    std::lock_guard<std::mutex> lock(mu_);
    result->clear();
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (const auto& [name, unused] : files_) {
      if (name.size() > prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0 &&
          name.find('/', prefix.size()) == std::string::npos) {
        result->push_back(name.substr(prefix.size()));
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(fname) == 0) {
      return Status::NotFound(fname);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string&) override { return Status::OK(); }
  Status RemoveDir(const std::string&) override { return Status::OK(); }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      *size = 0;
      return Status::NotFound(fname);
    }
    *size = it->second->contents.size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::NotFound(src);
    }
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  uint64_t NowMicros() override { return Env::Posix()->NowMicros(); }

 private:
  std::mutex mu_;
  std::map<std::string, FileStateRef> files_;
};

}  // namespace

Env* NewMemEnv() { return new MemEnv(); }

}  // namespace leveldbpp
