#include "env/scheduler_env.h"

namespace leveldbpp {

DedicatedSchedulerEnv::DedicatedSchedulerEnv(Env* base, int threads)
    : base_(base), pool_(threads > 0 ? threads : 1) {}

DedicatedSchedulerEnv::~DedicatedSchedulerEnv() = default;

void DedicatedSchedulerEnv::Schedule(void (*function)(void*), void* arg) {
  pool_.Submit([function, arg]() { (*function)(arg); });
}

}  // namespace leveldbpp
