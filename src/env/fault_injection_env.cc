#include "env/fault_injection_env.h"

#include <algorithm>
#include <vector>

namespace leveldbpp {

namespace {

// Read a whole file from `env` into *contents (files here are small: WALs,
// MANIFESTs, scaled-down SSTables).
Status ReadWholeFile(Env* env, const std::string& fname,
                     std::string* contents) {
  contents->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  char scratch[1 << 16];
  Slice chunk;
  do {
    s = file->Read(sizeof(scratch), &chunk, scratch);
    if (!s.ok()) return s;
    contents->append(chunk.data(), chunk.size());
  } while (!chunk.empty());
  return Status::OK();
}

}  // namespace

// Forwards to the base WritableFile, reporting appends/syncs to the env for
// durability tracking and consulting it for injected errors. An injected
// error performs no base-file side effect.
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string fname,
                             std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    Status s = env_->MaybeInjectError(FaultInjectionEnv::kOpAppend);
    if (!s.ok()) return s;
    s = base_->Append(data);
    if (s.ok()) env_->OnAppend(fname_, data.size());
    return s;
  }

  Status Close() override { return base_->Close(); }

  Status Flush() override {
    // Flush moves data from the process to the OS, not to the device: it
    // counts as an append-class op for injection but does NOT mark bytes
    // durable.
    Status s = env_->MaybeInjectError(FaultInjectionEnv::kOpAppend);
    if (!s.ok()) return s;
    return base_->Flush();
  }

  Status Sync() override {
    Status s = env_->MaybeInjectError(FaultInjectionEnv::kOpSync);
    if (!s.ok()) return s;
    s = base_->Sync();
    if (s.ok()) env_->OnSync(fname_);
    return s;
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint32_t seed,
                                     Statistics* stats)
    : base_(base), stats_(stats), rnd_(seed) {}

void FaultInjectionEnv::FailAfter(uint64_t n, uint32_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_mask_ = mask;
  ops_until_failure_ = n;
  counting_ = true;
  fail_one_in_ = 0;
  tripped_ = false;
}

void FaultInjectionEnv::FailWithProbability(uint32_t one_in, uint32_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_mask_ = mask;
  counting_ = false;
  fail_one_in_ = one_in;
  tripped_ = false;
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_mask_ = 0;
  counting_ = false;
  fail_one_in_ = 0;
  tripped_ = false;
}

bool FaultInjectionEnv::FaultsTripped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tripped_;
}

uint64_t FaultInjectionEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

void FaultInjectionEnv::ResetOpCount() {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_ = 0;
}

Status FaultInjectionEnv::MaybeInjectError(uint32_t kind) {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_++;
  if ((fail_mask_ & kind) == 0) return Status::OK();
  bool fail = false;
  if (tripped_) {
    fail = true;  // Sticky: the "device" stays gone.
  } else if (counting_) {
    if (ops_until_failure_ == 0) {
      tripped_ = true;
      fail = true;
    } else {
      ops_until_failure_--;
    }
  } else if (fail_one_in_ > 0) {
    if (rnd_.OneIn(static_cast<int>(fail_one_in_))) {
      tripped_ = true;  // Probabilistic failures are sticky too.
      fail = true;
    }
  }
  if (!fail) return Status::OK();
  if (stats_ != nullptr) stats_->Record(kFaultInjectedErrors);
  return Status::IOError("injected fault");
}

void FaultInjectionEnv::OnAppend(const std::string& fname, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[fname].length += bytes;
}

void FaultInjectionEnv::OnSync(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& fs = files_[fname];
  fs.synced_length = fs.length;
}

Status FaultInjectionEnv::SimulateCrash(CrashMode mode) {
  // Roll back renames whose parent directory was never SyncDir()ed, newest
  // first (only populated under SetTrackMetadataSync). The restored files
  // are their own pre-rename durable state, so they drop out of the
  // truncation pass below.
  std::vector<PendingRename> reverts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reverts.swap(pending_renames_);
    for (const PendingRename& pr : reverts) {
      files_.erase(pr.src);
      files_.erase(pr.target);
    }
  }
  Status revert_status;
  for (auto it = reverts.rbegin(); it != reverts.rend(); ++it) {
    const PendingRename& pr = *it;
    std::unique_ptr<WritableFile> out;
    Status s = base_->NewWritableFile(pr.src, &out);
    if (s.ok()) s = out->Append(Slice(pr.src_content));
    if (s.ok()) s = out->Close();
    if (s.ok()) {
      if (pr.target_existed) {
        out.reset();
        s = base_->NewWritableFile(pr.target, &out);
        if (s.ok()) s = out->Append(Slice(pr.target_old_content));
        if (s.ok()) s = out->Close();
      } else {
        s = base_->RemoveFile(pr.target);
      }
    }
    if (!s.ok() && revert_status.ok()) revert_status = s;
  }

  // Snapshot the tracking map, then rewrite outside the lock (the rewrite
  // goes through base_ directly, so it is neither counted nor failed).
  std::vector<std::pair<std::string, FileState>> tracked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tracked.assign(files_.begin(), files_.end());
  }

  Status result;
  for (const auto& [fname, state] : tracked) {
    uint64_t keep = state.synced_length;
    if (mode == CrashMode::kTornTail && state.length > state.synced_length) {
      const uint64_t unsynced = state.length - state.synced_length;
      std::lock_guard<std::mutex> lock(mu_);
      keep += rnd_.Uniform(
          static_cast<int>(std::min<uint64_t>(unsynced, 0x7ffffffe)) + 1);
    }

    std::string contents;
    Status s = ReadWholeFile(base_, fname, &contents);
    if (s.IsNotFound()) continue;  // Removed after being tracked: fine.
    if (!s.ok()) {
      if (result.ok()) result = s;
      continue;
    }
    // The file may be longer than our byte count if it predates tracking;
    // never grow it, only cut the tracked-unsynced suffix.
    const uint64_t untracked_prefix =
        contents.size() >= state.length ? contents.size() - state.length : 0;
    const uint64_t new_size =
        std::min<uint64_t>(contents.size(), untracked_prefix + keep);
    contents.resize(new_size);

    std::unique_ptr<WritableFile> out;
    s = base_->NewWritableFile(fname, &out);
    if (s.ok()) s = out->Append(Slice(contents));
    if (s.ok()) s = out->Sync();
    if (s.ok()) s = out->Close();
    if (!s.ok() && result.ok()) result = s;
  }

  // Post-crash, everything that survived is durable.
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  return result.ok() ? revert_status : result;
}

void FaultInjectionEnv::UntrackAll() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  pending_renames_.clear();
}

Status FaultInjectionEnv::CorruptFile(const std::string& fname,
                                      uint64_t offset, size_t nbytes) {
  std::string contents;
  Status s = ReadWholeFile(base_, fname, &contents);
  if (!s.ok()) return s;
  if (offset >= contents.size()) {
    return Status::InvalidArgument("corruption offset past EOF: ", fname);
  }
  const size_t end =
      std::min<uint64_t>(contents.size(), offset + nbytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = offset; i < end; i++) {
      // A zero mask would leave the byte intact; draw from [1, 255].
      contents[i] ^= static_cast<char>(1 + rnd_.Uniform(255));
    }
  }
  std::unique_ptr<WritableFile> out;
  s = base_->NewWritableFile(fname, &out);
  if (s.ok()) s = out->Append(Slice(contents));
  if (s.ok()) s = out->Sync();
  if (s.ok()) s = out->Close();
  return s;
}

void FaultInjectionEnv::SetTrackMetadataSync(bool track) {
  std::lock_guard<std::mutex> lock(mu_);
  track_metadata_sync_ = track;
  if (!track) pending_renames_.clear();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  return base_->NewSequentialFile(fname, result);
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  return base_->NewRandomAccessFile(fname, result);
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = MaybeInjectError(kOpNewWritable);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> base_file;
  s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  {
    // Creation truncates: fresh, fully-volatile state.
    std::lock_guard<std::mutex> lock(mu_);
    files_[fname] = FileState();
  }
  result->reset(
      new FaultInjectionWritableFile(this, fname, std::move(base_file)));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  Status s = MaybeInjectError(kOpRemove);
  if (!s.ok()) return s;
  s = base_->RemoveFile(fname);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  return base_->CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  Status s = MaybeInjectError(kOpRename);
  if (!s.ok()) return s;

  // Under the strict metadata model, capture both sides before the rename
  // so SimulateCrash can roll it back if the directory is never synced.
  bool track;
  {
    std::lock_guard<std::mutex> lock(mu_);
    track = track_metadata_sync_;
  }
  PendingRename pending;
  if (track) {
    const size_t slash = target.rfind('/');
    pending.dir = (slash == std::string::npos) ? "" : target.substr(0, slash);
    pending.src = src;
    pending.target = target;
    Status rs = ReadWholeFile(base_, src, &pending.src_content);
    if (!rs.ok()) track = false;  // Untrackable (src unreadable): fall back.
    if (track) {
      rs = ReadWholeFile(base_, target, &pending.target_old_content);
      pending.target_existed = rs.ok();
    }
  }

  s = base_->RenameFile(src, target);
  if (s.ok()) {
    // The durability state travels with the contents.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target] = it->second;
      files_.erase(it);
    } else {
      files_.erase(target);
    }
    if (track && track_metadata_sync_) {
      pending_renames_.push_back(std::move(pending));
    }
  }
  return s;
}

Status FaultInjectionEnv::SyncDir(const std::string& dirname) {
  Status s = MaybeInjectError(kOpSyncDir);
  if (!s.ok()) return s;
  s = base_->SyncDir(dirname);
  if (s.ok()) {
    // The directory's metadata updates are durable now: renames inside it
    // can no longer be rolled back.
    std::lock_guard<std::mutex> lock(mu_);
    pending_renames_.erase(
        std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                       [&](const PendingRename& pr) {
                         return pr.dir == dirname;
                       }),
        pending_renames_.end());
  }
  return s;
}

}  // namespace leveldbpp
