#include "json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace leveldbpp {
namespace json {

namespace {
const Value kNullValue;
}  // namespace

const Value& Value::operator[](const std::string& key) const {
  if (type_ == Type::kObject) {
    auto it = obj_->find(key);
    if (it != obj_->end()) return it->second;
  }
  return kNullValue;
}

void AppendQuoted(std::string* out, const Slice& s) {
  out->push_back('"');
  for (size_t i = 0; i < s.size(); i++) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void Value::Serialize(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber: {
      // Integers serialize without a decimal point so round trips are exact
      // for sequence numbers.
      if (num_ == std::floor(num_) && std::abs(num_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        out->append(buf);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out->append(buf);
      }
      break;
    }
    case Type::kString:
      AppendQuoted(out, Slice(str_));
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& v : *arr_) {
        if (!first) out->push_back(',');
        first = false;
        v.Serialize(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : *obj_) {
        if (!first) out->push_back(',');
        first = false;
        AppendQuoted(out, Slice(key));
        out->push_back(':');
        v.Serialize(out);
      }
      out->push_back('}');
      break;
    }
  }
}

namespace {

class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  bool ParseValue(Value* out) {
    SkipWs();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case 't':
        if (Match("true")) {
          *out = Value(true);
          return true;
        }
        return false;
      case 'f':
        if (Match("false")) {
          *out = Value(false);
          return true;
        }
        return false;
      case 'n':
        if (Match("null")) {
          *out = Value();
          return true;
        }
        return false;
      default:
        return ParseNumber(out);
    }
  }

  bool AtEnd() {
    SkipWs();
    return p_ >= end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      p_++;
    }
  }

  bool Match(const char* lit) {
    size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n) return false;
    if (std::memcmp(p_, lit, n) != 0) return false;
    p_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (p_ >= end_ || *p_ != '"') return false;
    p_++;
    out->clear();
    while (p_ < end_) {
      char c = *p_++;
      if (c == '"') return true;
      if (c == '\\') {
        if (p_ >= end_) return false;
        char e = *p_++;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (end_ - p_ < 4) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; i++) {
              char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= (h - '0');
              else if (h >= 'a' && h <= 'f') code |= (h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= (h - 'A' + 10);
              else return false;
            }
            // Encode as UTF-8 (surrogate pairs unsupported; BMP only).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // Unterminated
  }

  bool ParseNumber(Value* out) {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) p_++;
    bool digits = false;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '-' || *p_ == '+')) {
      if (std::isdigit(static_cast<unsigned char>(*p_))) digits = true;
      p_++;
    }
    if (!digits) return false;
    std::string num(start, p_ - start);
    char* endp = nullptr;
    double d = std::strtod(num.c_str(), &endp);
    if (endp != num.c_str() + num.size()) return false;
    *out = Value(d);
    return true;
  }

  bool ParseArray(Value* out) {
    p_++;  // '['
    Array arr;
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      p_++;
      *out = Value(std::move(arr));
      return true;
    }
    while (true) {
      Value v;
      if (!ParseValue(&v)) return false;
      arr.push_back(std::move(v));
      SkipWs();
      if (p_ >= end_) return false;
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == ']') {
        p_++;
        *out = Value(std::move(arr));
        return true;
      }
      return false;
    }
  }

  bool ParseObject(Value* out) {
    p_++;  // '{'
    Object obj;
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      p_++;
      *out = Value(std::move(obj));
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (p_ >= end_ || *p_ != ':') return false;
      p_++;
      Value v;
      if (!ParseValue(&v)) return false;
      obj[std::move(key)] = std::move(v);
      SkipWs();
      if (p_ >= end_) return false;
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == '}') {
        p_++;
        *out = Value(std::move(obj));
        return true;
      }
      return false;
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool Parse(const Slice& text, Value* out) {
  Parser parser(text.data(), text.data() + text.size());
  Value v;
  if (!parser.ParseValue(&v) || !parser.AtEnd()) {
    *out = Value();
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace json
}  // namespace leveldbpp
