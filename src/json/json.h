// Minimal JSON parser/serializer.
//
// Used for (a) record values — tweets are stored as JSON documents, with the
// default AttributeExtractor pulling indexed attributes out of the top-level
// object — and (b) Stand-Alone Lazy/Eager posting lists, which the paper
// serializes as "a single JSON array" (its Lazy-index CPU overhead comes
// precisely from parsing and merging these JSON lists during compaction).

#ifndef LEVELDBPP_JSON_JSON_H_
#define LEVELDBPP_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"

namespace leveldbpp {
namespace json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), num_(d) {}
  explicit Value(int64_t i)
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  int64_t as_int() const { return static_cast<int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return *arr_; }
  Array& as_array() { return *arr_; }
  const Object& as_object() const { return *obj_; }
  Object& as_object() { return *obj_; }

  /// Object member access; returns a null Value for missing keys or
  /// non-objects.
  const Value& operator[](const std::string& key) const;

  /// Serialize to compact JSON text (no whitespace).
  void Serialize(std::string* out) const;
  std::string ToString() const {
    std::string s;
    Serialize(&s);
    return s;
  }

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse JSON text. Returns false on malformed input (leaving *out null).
bool Parse(const Slice& text, Value* out);

/// Escape + quote a string per JSON rules, appended to *out.
void AppendQuoted(std::string* out, const Slice& s);

}  // namespace json
}  // namespace leveldbpp

#endif  // LEVELDBPP_JSON_JSON_H_
