// Cache: sharded LRU cache used for data blocks (and open tables).
//
// The paper runs its experiments with "no block cache"; the engine supports
// one anyway (a production LSM store needs it), defaulting to disabled in
// the benches to match the paper's configuration.

#ifndef LEVELDBPP_CACHE_CACHE_H_
#define LEVELDBPP_CACHE_CACHE_H_

#include <cstdint>

#include "util/slice.h"

namespace leveldbpp {

class Cache {
 public:
  Cache() = default;
  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Destroys all remaining entries via their deleters.
  virtual ~Cache() = default;

  /// Opaque handle to a cache entry.
  struct Handle {};

  /// Insert a key->value mapping with the given charge against the cache
  /// capacity. Returns a handle; caller must Release() it. `deleter` is
  /// invoked when the entry is evicted and unreferenced.
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value)) = 0;

  /// Returns a handle for the mapping, or nullptr. Caller must Release().
  virtual Handle* Lookup(const Slice& key) = 0;

  virtual void Release(Handle* handle) = 0;
  virtual void* Value(Handle* handle) = 0;

  /// Drop the mapping (entry is destroyed once unreferenced).
  virtual void Erase(const Slice& key) = 0;

  /// Process-unique numeric id, used to partition one cache among clients.
  virtual uint64_t NewId() = 0;

  virtual size_t TotalCharge() const = 0;
};

/// New LRU cache with a fixed total `capacity` (in charge units, typically
/// bytes). Caller owns the result.
Cache* NewLRUCache(size_t capacity);

}  // namespace leveldbpp

#endif  // LEVELDBPP_CACHE_CACHE_H_
