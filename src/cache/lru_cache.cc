#include "cache/cache.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

#include "util/hash.h"

namespace leveldbpp {

namespace {

// A single-shard LRU cache with reference counting. Entries live in a hash
// map; an intrusive LRU list orders unpinned entries for eviction.
struct LRUEntry {
  std::string key;
  void* value;
  size_t charge;
  void (*deleter)(const Slice&, void*);
  uint32_t refs;     // Includes the cache's own reference while resident
  bool in_cache;     // Still referenced by the cache's table?
  std::list<LRUEntry*>::iterator lru_pos;  // Valid iff refs == 1 && in_cache
  bool in_lru;
};

class LRUShard {
 public:
  LRUShard() : capacity_(0), usage_(0) {}
  ~LRUShard() {
    // All handles should have been released by clients; destroy residents.
    for (auto& [key, e] : table_) {
      assert(e->refs == 1);  // Only the cache's reference remains
      e->deleter(Slice(e->key), e->value);
      delete e;
    }
  }

  void SetCapacity(size_t c) { capacity_ = c; }

  Cache::Handle* Insert(const Slice& key, void* value, size_t charge,
                        void (*deleter)(const Slice&, void*)) {
    std::lock_guard<std::mutex> lock(mu_);
    LRUEntry* e = new LRUEntry;
    e->key = key.ToString();
    e->value = value;
    e->charge = charge;
    e->deleter = deleter;
    e->refs = 2;  // One for the cache, one for the returned handle
    e->in_cache = true;
    e->in_lru = false;

    auto it = table_.find(e->key);
    if (it != table_.end()) {
      RemoveEntry(it->second);
      it->second = e;
    } else {
      table_[e->key] = e;
    }
    usage_ += charge;
    EvictIfNeeded();
    return reinterpret_cast<Cache::Handle*>(e);
  }

  Cache::Handle* Lookup(const Slice& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key.ToString());
    if (it == table_.end()) return nullptr;
    LRUEntry* e = it->second;
    if (e->in_lru) {
      lru_.erase(e->lru_pos);
      e->in_lru = false;
    }
    e->refs++;
    return reinterpret_cast<Cache::Handle*>(e);
  }

  void Release(Cache::Handle* handle) {
    std::lock_guard<std::mutex> lock(mu_);
    Unref(reinterpret_cast<LRUEntry*>(handle));
  }

  void Erase(const Slice& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key.ToString());
    if (it != table_.end()) {
      LRUEntry* e = it->second;
      table_.erase(it);
      RemoveEntry(e);
    }
  }

  size_t TotalCharge() const {
    std::lock_guard<std::mutex> lock(mu_);
    return usage_;
  }

 private:
  // Drop the cache's reference to e (caller removed it from table_ or is
  // replacing it). mu_ held.
  void RemoveEntry(LRUEntry* e) {
    if (e->in_lru) {
      lru_.erase(e->lru_pos);
      e->in_lru = false;
    }
    e->in_cache = false;
    usage_ -= e->charge;
    Unref(e);
  }

  void Unref(LRUEntry* e) {
    assert(e->refs > 0);
    e->refs--;
    if (e->refs == 0) {
      e->deleter(Slice(e->key), e->value);
      delete e;
    } else if (e->in_cache && e->refs == 1) {
      // Only the cache holds it now; make it evictable.
      lru_.push_front(e);
      e->lru_pos = lru_.begin();
      e->in_lru = true;
      EvictIfNeeded();
    }
  }

  void EvictIfNeeded() {
    while (usage_ > capacity_ && !lru_.empty()) {
      LRUEntry* victim = lru_.back();
      table_.erase(victim->key);
      RemoveEntry(victim);
    }
  }

  mutable std::mutex mu_;
  size_t capacity_;
  size_t usage_;
  std::unordered_map<std::string, LRUEntry*> table_;
  std::list<LRUEntry*> lru_;  // Front = most recently unpinned
};

constexpr int kNumShardBits = 4;
constexpr int kNumShards = 1 << kNumShardBits;

class ShardedLRUCache final : public Cache {
 public:
  explicit ShardedLRUCache(size_t capacity) : last_id_(0) {
    const size_t per_shard = (capacity + (kNumShards - 1)) / kNumShards;
    for (int s = 0; s < kNumShards; s++) {
      shards_[s].SetCapacity(per_shard);
    }
  }

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 void (*deleter)(const Slice&, void*)) override {
    return shards_[Shard(key)].Insert(key, value, charge, deleter);
  }
  Handle* Lookup(const Slice& key) override {
    return shards_[Shard(key)].Lookup(key);
  }
  void Release(Handle* handle) override {
    // The entry records its own key; recover the shard from it.
    LRUEntry* e = reinterpret_cast<LRUEntry*>(handle);
    shards_[Shard(Slice(e->key))].Release(handle);
  }
  void* Value(Handle* handle) override {
    return reinterpret_cast<LRUEntry*>(handle)->value;
  }
  void Erase(const Slice& key) override { shards_[Shard(key)].Erase(key); }
  uint64_t NewId() override {
    std::lock_guard<std::mutex> lock(id_mu_);
    return ++last_id_;
  }
  size_t TotalCharge() const override {
    size_t total = 0;
    for (int s = 0; s < kNumShards; s++) total += shards_[s].TotalCharge();
    return total;
  }

 private:
  static uint32_t Shard(const Slice& key) {
    return Hash(key.data(), key.size(), 0) >> (32 - kNumShardBits);
  }

  LRUShard shards_[kNumShards];
  std::mutex id_mu_;
  uint64_t last_id_;
};

}  // namespace

Cache* NewLRUCache(size_t capacity) { return new ShardedLRUCache(capacity); }

}  // namespace leveldbpp
