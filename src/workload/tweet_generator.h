// Synthetic tweet dataset generator (paper Section 5.1).
//
// Mirrors the paper's generator, which inputs a seed crawl and preserves its
// distributions. The seed's published statistics are baked in as defaults:
// Zipf-distributed UserID (avg ~30 tweets/user, Figure 7), tweets-per-second
// uniform in [0, 2·avg] (avg 35/s in the seed), random-character body with
// realistic lengths (avg tweet ~550 bytes), and a time-correlated
// CreationTime (fixed-width decimal seconds, non-decreasing with insertion
// order — the property zone maps exploit).

#ifndef LEVELDBPP_WORKLOAD_TWEET_GENERATOR_H_
#define LEVELDBPP_WORKLOAD_TWEET_GENERATOR_H_

#include <cstdint>
#include <string>

#include "util/random.h"
#include "workload/zipf.h"

namespace leveldbpp {

struct Tweet {
  std::string tweet_id;       // Primary key, monotonically increasing
  std::string user_id;        // Secondary attribute (not time-correlated)
  std::string creation_time;  // Secondary attribute (time-correlated),
                              // 12-digit decimal seconds
  std::string body;

  /// Serialize as the JSON document stored in the primary table.
  std::string ToJson() const;
};

struct TweetGeneratorOptions {
  /// Number of distinct users; with the default Zipf exponent and
  /// tweets ≈ 30 × users this matches the seed's ~30 tweets/user.
  uint64_t num_users = 10000;
  /// Zipf exponent for the user rank-frequency distribution (Figure 7).
  double zipf_exponent = 1.0;
  /// Mean tweets per second; actual rate per second is uniform in
  /// [0, 2 * mean] like the paper's generator.
  uint32_t mean_tweets_per_second = 35;
  /// Starting timestamp (seconds).
  uint64_t start_time = 1400000000;
  /// Body length bounds (random characters); the body exists to make block
  /// occupancy realistic, per the paper.
  uint32_t min_body_len = 60;
  uint32_t max_body_len = 240;
  uint64_t seed = 20180610;
};

class TweetGenerator {
 public:
  explicit TweetGenerator(const TweetGeneratorOptions& options);

  /// Generate the next tweet (ids/timestamps advance monotonically).
  Tweet Next();

  uint64_t generated() const { return count_; }

  /// The user id string for Zipf rank `rank` (rank 0 = most active user).
  static std::string UserIdForRank(uint64_t rank);

  /// Fixed-width encoding of a timestamp, matching Tweet::creation_time.
  static std::string EncodeTime(uint64_t seconds);

  uint64_t current_time() const { return now_; }
  const TweetGeneratorOptions& options() const { return options_; }

 private:
  TweetGeneratorOptions options_;
  ZipfGenerator user_zipf_;
  Random64 rnd_;
  uint64_t count_ = 0;
  uint64_t now_;
  uint32_t remaining_this_second_ = 0;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_WORKLOAD_TWEET_GENERATOR_H_
