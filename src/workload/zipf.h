// Zipf (power-law) sampler over ranks 0..n-1.
//
// The paper's seed crawl (Figure 7) shows a power-law rank-frequency
// distribution of tweets per user; its synthetic generator preserves that
// distribution. This sampler reproduces it directly: P(rank r) ∝ 1/(r+1)^s.

#ifndef LEVELDBPP_WORKLOAD_ZIPF_H_
#define LEVELDBPP_WORKLOAD_ZIPF_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace leveldbpp {

class ZipfGenerator {
 public:
  /// `n` ranks with exponent `s` (s ~= 1.0 matches Figure 7's slope).
  ZipfGenerator(uint64_t n, double s, uint64_t seed)
      : rnd_(seed), cdf_(n) {
    double sum = 0;
    for (uint64_t i = 0; i < n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; i++) {
      cdf_[i] /= sum;
    }
  }

  /// Sample a rank in [0, n).
  uint64_t Next() {
    double u = rnd_.NextDouble();
    // Binary search the CDF.
    uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint64_t n() const { return cdf_.size(); }

 private:
  Random64 rnd_;
  std::vector<double> cdf_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_WORKLOAD_ZIPF_H_
