// Operation workload generators (paper Section 5.1, Table 7).
//
// Two modes, like the paper's generator:
//  * Static — insert all tweets (building indexes), then run isolated query
//    batches (GET / LOOKUP / RANGELOOKUP with chosen selectivity & top-K).
//  * Mixed  — one interleaved operation stream with configurable frequency
//    ratios of PUT / GET / LOOKUP and a ratio of PUTs that overwrite an
//    existing TweetID ("Updates").
//
// Query conditions are sampled from the distribution of already-inserted
// values (a LOOKUP user is drawn Zipf-like by picking the user of a random
// inserted tweet), matching "the conditions of the query operations are
// selected based on the distribution of values in the input tweets".

#ifndef LEVELDBPP_WORKLOAD_WORKLOAD_H_
#define LEVELDBPP_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"
#include "workload/tweet_generator.h"

namespace leveldbpp {

enum class OpType { kPut, kGet, kDelete, kLookup, kRangeLookup };

struct Operation {
  OpType type = OpType::kPut;
  std::string key;        // PUT / GET / DELETE
  std::string document;   // PUT
  std::string attribute;  // LOOKUP / RANGELOOKUP
  std::string lo, hi;     // LOOKUP uses lo only; RANGELOOKUP uses [lo, hi]
  size_t k = 0;           // top-K (0 = no limit)
};

/// Frequency ratios for Mixed workloads (Table 7b). An "Update" is a PUT
/// that overwrites an existing TweetID. put+get+lookup+update == 1.
struct MixedRatios {
  double put = 0.8;
  double get = 0.15;
  double lookup = 0.05;
  double update = 0.0;

  static MixedRatios WriteHeavy() { return {0.80, 0.15, 0.05, 0.0}; }
  static MixedRatios ReadHeavy() { return {0.20, 0.70, 0.10, 0.0}; }
  static MixedRatios UpdateHeavy() { return {0.40, 0.15, 0.05, 0.40}; }
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const TweetGeneratorOptions& tweet_options,
                    uint64_t seed);

  /// Next insert operation (a fresh tweet). Remembers the tweet so query
  /// conditions can be sampled from the inserted distribution.
  Operation NextPut();

  /// GET of a uniformly random already-inserted TweetID.
  Operation NextGet();

  /// PUT that overwrites a random existing TweetID with fresh content
  /// (an "Update" in the paper's terminology).
  Operation NextUpdate();

  /// LOOKUP(UserID, u, k) with u sampled from the inserted tweets.
  Operation NextUserLookup(size_t k);

  /// LOOKUP(CreationTime, ts, k) with ts sampled from inserted tweets.
  Operation NextTimeLookup(size_t k);

  /// RANGELOOKUP(UserID, ..) covering ~`num_users` consecutive user ids
  /// (the paper's "selectivity in number of users").
  Operation NextUserRangeLookup(uint64_t num_users, size_t k);

  /// RANGELOOKUP(CreationTime, ..) spanning `minutes` minutes ending at a
  /// sampled timestamp (the paper's "selectivity in minutes").
  Operation NextTimeRangeLookup(uint64_t minutes, size_t k);

  /// Next operation of a Mixed stream with the given ratios.
  Operation NextMixed(const MixedRatios& ratios, size_t lookup_k);

  uint64_t num_inserted() const { return total_inserted_; }
  const TweetGenerator& tweets() const { return tweets_; }

 private:
  const Tweet& SampleInserted();

  TweetGenerator tweets_;
  Random64 rnd_;
  // Reservoir of inserted tweets for condition sampling; caps memory on
  // large runs while preserving the value distribution.
  static constexpr size_t kMaxRetained = 1 << 18;
  std::vector<Tweet> retained_;
  uint64_t total_inserted_ = 0;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_WORKLOAD_WORKLOAD_H_
