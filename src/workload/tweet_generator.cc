#include "workload/tweet_generator.h"

#include <cstdio>

#include "json/json.h"

namespace leveldbpp {

std::string Tweet::ToJson() const {
  json::Object obj;
  obj["TweetID"] = json::Value(tweet_id);
  obj["UserID"] = json::Value(user_id);
  obj["CreationTime"] = json::Value(creation_time);
  obj["Body"] = json::Value(body);
  return json::Value(std::move(obj)).ToString();
}

TweetGenerator::TweetGenerator(const TweetGeneratorOptions& options)
    : options_(options),
      user_zipf_(options.num_users, options.zipf_exponent, options.seed),
      rnd_(options.seed * 2654435761u + 1),
      now_(options.start_time) {}

std::string TweetGenerator::UserIdForRank(uint64_t rank) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "u%08llu",
                static_cast<unsigned long long>(rank));
  return buf;
}

std::string TweetGenerator::EncodeTime(uint64_t seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(seconds));
  return buf;
}

Tweet TweetGenerator::Next() {
  // Advance the clock: each second carries a uniform [0, 2*mean] number of
  // tweets, like the paper's generator.
  while (remaining_this_second_ == 0) {
    now_++;
    remaining_this_second_ = static_cast<uint32_t>(
        rnd_.Uniform(2 * options_.mean_tweets_per_second + 1));
  }
  remaining_this_second_--;

  Tweet t;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%012llu",
                static_cast<unsigned long long>(count_));
  t.tweet_id = buf;
  t.user_id = UserIdForRank(user_zipf_.Next());
  t.creation_time = EncodeTime(now_);

  uint32_t body_len =
      options_.min_body_len +
      static_cast<uint32_t>(
          rnd_.Uniform(options_.max_body_len - options_.min_body_len + 1));
  t.body.reserve(body_len);
  for (uint32_t i = 0; i < body_len; i++) {
    t.body.push_back(static_cast<char>('a' + rnd_.Uniform(26)));
  }

  count_++;
  return t;
}

}  // namespace leveldbpp
