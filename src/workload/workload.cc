#include "workload/workload.h"

#include <cassert>

namespace leveldbpp {

WorkloadGenerator::WorkloadGenerator(
    const TweetGeneratorOptions& tweet_options, uint64_t seed)
    : tweets_(tweet_options), rnd_(seed ^ 0x5eed5eed5eed5eedull) {}

const Tweet& WorkloadGenerator::SampleInserted() {
  assert(!retained_.empty());
  return retained_[rnd_.Uniform(retained_.size())];
}

Operation WorkloadGenerator::NextPut() {
  Tweet t = tweets_.Next();
  Operation op;
  op.type = OpType::kPut;
  op.key = t.tweet_id;
  op.document = t.ToJson();
  total_inserted_++;
  // Reservoir sampling (Algorithm R).
  if (retained_.size() < kMaxRetained) {
    retained_.push_back(std::move(t));
  } else {
    uint64_t slot = rnd_.Uniform(total_inserted_);
    if (slot < kMaxRetained) {
      retained_[slot] = std::move(t);
    }
  }
  return op;
}

Operation WorkloadGenerator::NextGet() {
  Operation op;
  op.type = OpType::kGet;
  op.key = SampleInserted().tweet_id;
  return op;
}

Operation WorkloadGenerator::NextUpdate() {
  // Overwrite an existing TweetID with fresh content: new UserID, new
  // CreationTime — this is what leaves stale index entries behind.
  Tweet t = tweets_.Next();
  Operation op;
  op.type = OpType::kPut;
  op.key = SampleInserted().tweet_id;
  op.document = t.ToJson();
  return op;
}

Operation WorkloadGenerator::NextUserLookup(size_t k) {
  Operation op;
  op.type = OpType::kLookup;
  op.attribute = "UserID";
  op.lo = op.hi = SampleInserted().user_id;
  op.k = k;
  return op;
}

Operation WorkloadGenerator::NextTimeLookup(size_t k) {
  Operation op;
  op.type = OpType::kLookup;
  op.attribute = "CreationTime";
  op.lo = op.hi = SampleInserted().creation_time;
  op.k = k;
  return op;
}

Operation WorkloadGenerator::NextUserRangeLookup(uint64_t num_users,
                                                 size_t k) {
  // User ids are zero-padded ranks, so `num_users` consecutive ranks form a
  // contiguous key range.
  uint64_t max_rank = tweets_.options().num_users;
  uint64_t width = std::min(num_users, max_rank);
  // Anchor on a sampled tweet's user so popular ranges appear more often.
  const Tweet& t = SampleInserted();
  uint64_t rank = std::strtoull(t.user_id.c_str() + 1, nullptr, 10);
  uint64_t lo_rank = (rank + width <= max_rank) ? rank : max_rank - width;
  Operation op;
  op.type = OpType::kRangeLookup;
  op.attribute = "UserID";
  op.lo = TweetGenerator::UserIdForRank(lo_rank);
  op.hi = TweetGenerator::UserIdForRank(lo_rank + width - 1);
  op.k = k;
  return op;
}

Operation WorkloadGenerator::NextTimeRangeLookup(uint64_t minutes, size_t k) {
  const Tweet& t = SampleInserted();
  uint64_t hi = std::strtoull(t.creation_time.c_str(), nullptr, 10);
  uint64_t span = minutes * 60;
  uint64_t lo = (hi > span) ? hi - span : 0;
  Operation op;
  op.type = OpType::kRangeLookup;
  op.attribute = "CreationTime";
  op.lo = TweetGenerator::EncodeTime(lo);
  op.hi = TweetGenerator::EncodeTime(hi);
  op.k = k;
  return op;
}

Operation WorkloadGenerator::NextMixed(const MixedRatios& ratios,
                                       size_t lookup_k) {
  double u = rnd_.NextDouble();
  if (u < ratios.put || total_inserted_ == 0) {
    return NextPut();
  }
  u -= ratios.put;
  if (u < ratios.update) {
    return NextUpdate();
  }
  u -= ratios.update;
  if (u < ratios.get) {
    return NextGet();
  }
  return NextUserLookup(lookup_k);
}

}  // namespace leveldbpp
