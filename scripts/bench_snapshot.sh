#!/usr/bin/env bash
# Capture a machine-readable bench snapshot into BENCH_<n>.json (JSON lines,
# one measurement per line, first line a "meta" record). Each snapshot pins
# the exact bench invocations, so numbers from different checkouts compare
# like-for-like.
#
# Usage: scripts/bench_snapshot.sh [<n>]
#   <n>  snapshot number (default: next free BENCH_<n>.json)
#
# Pinned suite (a few minutes on a laptop):
#   * bench_concurrent_put, 4 writers, imm queue depth 1 vs 4 — the
#     pipelined-flush axis. Two shapes: sustained closed-loop (where a
#     deeper queue cannot beat the single background thread and is
#     expected to trade a few percent), and bursty traffic with a 5 ms
#     simulated table-sync latency (the pipeline's target case: the
#     queue absorbs each burst at memtable speed and flushes drain in
#     the gaps).
#   * bench_ingest --phase=load — bulk load vs. memtable backfill: 1M docs
#     on Embedded (the narrowest margin — its index is free at build
#     time, so ingest only skips WAL+memtable) and on Lazy (a real
#     index-maintenance write path), 200k on the remaining stand-alone
#     variants (Eager's read-modify-write backfill is ~30x slower; same
#     feed either way).
#   * bench_ingest --phase=maintenance — Put throughput under each
#     IndexMaintenance mode, 100k docs.
#   * bench_fig9_put_over_time — the paper's Figure 9 PUT-latency windows,
#     guarding the default (non-pipelined) write path against regressions.
#   * bench_serve — the sharded serving layer: mixed PUT/LOOKUP (10%
#     lookups, 4 client threads) across all five variants, unsharded
#     baseline vs. ShardedDB at 1/2/4 shards over the real protocol
#     server. On a single-core container the shard counts are expected to
#     tie (the sweep records the shape, and that N=1 costs nothing over
#     unsharded); scaling shows on multi-core hardware.
#   * bench_serve --mode=overload — offered-load sweep past saturation:
#     write-heavy no-retry clients against small-memtable shards with
#     shedding on, thread count stepped 1..16. Goodput should hold while
#     the excess answers RETRY_LATER and acknowledged-write p99 stays
#     bounded — the overload-proofing contract, as a number.
#   * bench_range_scan — primary range scans, heap-merge iterators vs
#     REMIX-style sorted views, selectivity sweep (1‰ .. 1000‰) across
#     all five variants over identical deterministic LSM shapes. The
#     sorted view pays one binary search per Seek and then streams runs
#     sequentially; the gap over the per-Next heap reshuffle widens with
#     scan width.
set -euo pipefail

cd "$(dirname "$0")/.."

n="${1:-}"
if [[ -z "${n}" ]]; then
  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
fi
out="BENCH_${n}.json"

echo "==> Release build"
cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)" >/dev/null
bin=build

tmp="$(mktemp)"
trap 'rm -f "${tmp}"' EXIT

git_rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
printf '{"bench":"meta","snapshot":%s,"git":"%s","date":"%s","nproc":%s}\n' \
  "${n}" "${git_rev}" "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$(nproc)" >> "${tmp}"

echo "==> concurrent_put sustained (4 writers, imm depth 1 vs 4)"
"${bin}/bench/bench_concurrent_put" --threads=4 --max_imm=1 >> "${tmp}"
"${bin}/bench/bench_concurrent_put" --threads=4 --max_imm=4 >> "${tmp}"

echo "==> concurrent_put bursty + 5ms table sync (imm depth 1 vs 4)"
"${bin}/bench/bench_concurrent_put" --threads=4 --max_imm=1 \
  --burst_ops=8192 --burst_gap_ms=150 --table_sync_latency_us=5000 \
  >> "${tmp}"
"${bin}/bench/bench_concurrent_put" --threads=4 --max_imm=4 \
  --burst_ops=8192 --burst_gap_ms=150 --table_sync_latency_us=5000 \
  >> "${tmp}"

echo "==> ingest load (1M docs, Embedded + Lazy)"
"${bin}/bench/bench_ingest" --phase=load --docs=1000000 \
  --types=embedded,lazy >> "${tmp}"

echo "==> ingest load (200k docs, remaining stand-alone variants)"
"${bin}/bench/bench_ingest" --phase=load --docs=200000 \
  --types=noindex,eager,composite >> "${tmp}"

echo "==> maintenance modes (100k docs)"
"${bin}/bench/bench_ingest" --phase=maintenance --docs=100000 \
  --types=lazy,eager,composite >> "${tmp}"

echo "==> fig9 put-over-time (default write path)"
"${bin}/bench/bench_fig9_put_over_time" --json >> "${tmp}"

echo "==> serve shard sweep (mixed PUT/LOOKUP, unsharded + 1/2/4 shards)"
"${bin}/bench/bench_serve" --mode=unsharded --threads=4 --ops=20000 \
  --lookup_frac=10 >> "${tmp}"
for shards in 1 2 4; do
  "${bin}/bench/bench_serve" --mode=server --shards="${shards}" --threads=4 \
    --ops=20000 --lookup_frac=10 >> "${tmp}"
done

echo "==> serve overload sweep (no-retry writers, shedding on)"
"${bin}/bench/bench_serve" --mode=overload --shards=2 --ops=20000 \
  --types=lazy >> "${tmp}"

echo "==> range scans (heap-merge vs sorted view, selectivity sweep)"
"${bin}/bench/bench_range_scan" --n=40000 --reps=40 >> "${tmp}"

mv "${tmp}" "${out}"
trap - EXIT
echo "==> wrote ${out} ($(wc -l < "${out}") lines)"