#!/usr/bin/env bash
# Full pre-merge check: release build + tests, then ThreadSanitizer and
# Address+UB Sanitizer builds running the concurrency/parallel-read tests
# and a "faults" step running the fault-injection / crash-recovery suites
# under both sanitizers.
#
# Usage: scripts/check.sh [--sanitize-all]
#   --sanitize-all  run the entire test suite (not just the concurrency and
#                   parallel-read tests) under TSan and ASan; slow.
set -euo pipefail

cd "$(dirname "$0")/.."

# The tests that exercise cross-thread code paths: the group-commit writer
# queue and background compaction (Concurrency*), and the parallel query
# engine (MultiGet*, ParallelQuery*).
SAN_FILTER="-R Concurrency|MultiGet|ParallelQuery"
if [[ "${1:-}" == "--sanitize-all" || "${1:-}" == "--tsan-all" ]]; then
  SAN_FILTER=""
fi

echo "==> Release build"
cmake --preset release
cmake --build --preset release -j "$(nproc)"

echo "==> Release tests"
ctest --preset release -j "$(nproc)"

echo "==> TSan build"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "==> TSan tests (${SAN_FILTER:-full suite})"
# halt_on_error so a race fails the run instead of just printing.
TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan ${SAN_FILTER:+-R "${SAN_FILTER#-R }"}

echo "==> ASan build"
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

echo "==> ASan tests (${SAN_FILTER:-full suite})"
ASAN_OPTIONS="halt_on_error=1" ctest --preset asan ${SAN_FILTER:+-R "${SAN_FILTER#-R }"}

# Crash-consistency: the FaultInjection / CrashRecovery / RandomizedCrash
# suites drive every index variant through write -> crash -> reopen cycles.
# Run them under both sanitizers (they are quick but memory-intensive, so
# they are not part of the default SAN_FILTER above). Skipped when
# --sanitize-all already ran the full suites.
FAULT_FILTER="FaultInjection|CrashRecovery|RandomizedCrash"
if [[ -n "${SAN_FILTER}" ]]; then
  echo "==> TSan fault-injection tests"
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -R "${FAULT_FILTER}"
  echo "==> ASan fault-injection tests"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -R "${FAULT_FILTER}"
fi

# Corruption survival: the Corruption / Repair suites bit-flip every file
# class a store owns (data/index/meta blocks, MANIFEST, CURRENT, WAL tail)
# and run the RepairDB -> RebuildIndex -> verify drill across all five index
# variants. The salvage path copies raw blocks around, so run it under ASan.
# Skipped when --sanitize-all already ran the full suites.
REPAIR_FILTER="Corruption|Repair"
if [[ -n "${SAN_FILTER}" ]]; then
  echo "==> ASan corruption/repair tests"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -R "${REPAIR_FILTER}"
fi

# Ingestion: the pipelined-flush suite drives multiple writers against a
# deep immutable-memtable queue (TSan: rotation, stall ladder, background
# flush all cross threads), and the bulk-load path splices externally built
# SSTables + deferred index batches (ASan: buffer handoffs, feed chunking).
# Skipped when --sanitize-all already ran the full suites.
if [[ -n "${SAN_FILTER}" ]]; then
  echo "==> TSan ingest tests"
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -L ingest
  echo "==> ASan ingest tests"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -L ingest
fi

# Iterators: the differential iterator-model harness (500+ randomized
# rounds of snapshot reads, scans, flush/compaction/ingest interleavings,
# byte-identical across sorted_views on/off x read_parallelism 0/4) plus
# the directed snapshot-under-mutation suite. Snapshot pinning crosses the
# writer/background threads (TSan) and the sorted-view artifact is parsed
# back from disk on reopen (ASan). Skipped when --sanitize-all already ran
# the full suites.
if [[ -n "${SAN_FILTER}" ]]; then
  echo "==> TSan iterator tests"
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -L iterator
  echo "==> ASan iterator tests"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -L iterator
fi

# Observability: PerfContext mirrors every Statistics::Record on the query
# thread and ParallelRun merges task-local contexts across the pool, so the
# suite is a natural race detector — run it under TSan. Skipped when
# --sanitize-all already ran the full suites.
if [[ -n "${SAN_FILTER}" ]]; then
  echo "==> TSan observability tests"
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -L observability
fi

# Serving: the sharded equivalence matrix, the wire-protocol gauntlet, and
# the chaos suite (stalled/failed/delayed shards, killed connections,
# deadline storms behind a live server). The server is thread-per-connection
# over a shard fan-out over the shared pool, with a per-shard background
# lane — four thread populations interleaving (TSan) — and the frame codec
# parses attacker-controlled bytes (ASan), including the fuzzed malformed
# frames. Skipped when --sanitize-all already ran the full suites.
if [[ -n "${SAN_FILTER}" ]]; then
  echo "==> TSan serving tests"
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -L serving
  echo "==> ASan serving tests"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -L serving
fi

# End-to-end serving smoke: start the release server binary on an ephemeral
# port, round-trip PUT/GET/LOOKUP through the CLI client, and shut it down.
echo "==> Server smoke test"
SMOKE_DB="$(mktemp -d)/smoke_store"
build/tools/leveldbpp_server --db="${SMOKE_DB}" --shards=2 --port=0 \
  --type=lazy --attrs=UserID > "${SMOKE_DB}.log" 2>&1 &
SMOKE_PID=$!
trap 'kill "${SMOKE_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  grep -q "listening on" "${SMOKE_DB}.log" 2>/dev/null && break
  sleep 0.1
done
SMOKE_PORT="$(sed -n 's/.*:\([0-9]*\)$/\1/p' "${SMOKE_DB}.log" | head -1)"
build/tools/leveldbpp_client --port="${SMOKE_PORT}" ping
build/tools/leveldbpp_client --port="${SMOKE_PORT}" put smoke '{"UserID":"u1"}'
build/tools/leveldbpp_client --port="${SMOKE_PORT}" get smoke | grep -q '"UserID":"u1"'
build/tools/leveldbpp_client --port="${SMOKE_PORT}" lookup UserID u1 1 | grep -q smoke
kill "${SMOKE_PID}"
wait "${SMOKE_PID}" 2>/dev/null || true
trap - EXIT
rm -rf "$(dirname "${SMOKE_DB}")"

# Docs drift: stats_doc_test cross-checks docs/METRICS.md against the code
# registries in both directions (it is part of the release ctest run above,
# but a dedicated step makes a doc-only failure obvious).
echo "==> Metrics manual coverage"
ctest --preset release -R StatsDocTest

echo "==> All checks passed"
