#!/usr/bin/env bash
# Full pre-merge check: release build + tests, then a ThreadSanitizer build
# running the concurrency-sensitive tests.
#
# Usage: scripts/check.sh [--tsan-all]
#   --tsan-all  run the entire test suite (not just concurrency tests)
#               under TSan; slow.
set -euo pipefail

cd "$(dirname "$0")/.."

TSAN_FILTER="-R Concurrency"
if [[ "${1:-}" == "--tsan-all" ]]; then
  TSAN_FILTER=""
fi

echo "==> Release build"
cmake --preset release
cmake --build --preset release -j "$(nproc)"

echo "==> Release tests"
ctest --preset release -j "$(nproc)"

echo "==> TSan build"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "==> TSan tests (${TSAN_FILTER:-full suite})"
# halt_on_error so a race fails the run instead of just printing.
TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan ${TSAN_FILTER}

echo "==> All checks passed"
