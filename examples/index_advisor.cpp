// Index advisor: an executable version of the paper's Figure 2 decision
// procedure. Describe your workload with flags; the advisor recommends an
// index strategy and explains each branch it took, then (optionally)
// validates the recommendation with a micro-trial on synthetic data.
//
//   ./index_advisor --writes=0.8 --lookups=0.03 --topk=10 \
//                   --time-correlated=0 --space-constrained=0 [--trial]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/secondary_db.h"
#include "env/env.h"
#include "workload/workload.h"

using namespace leveldbpp;

namespace {

double FlagDouble(int argc, char** argv, const char* name, double def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; i++) {
    if (strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return atof(argv[i] + prefix.size());
    }
  }
  return def;
}

bool FlagBool(int argc, char** argv, const char* name) {
  std::string want = std::string("--") + name;
  for (int i = 1; i < argc; i++) {
    if (want == argv[i] || want + "=1" == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  double writes = FlagDouble(argc, argv, "writes", 0.8);
  double lookups = FlagDouble(argc, argv, "lookups", 0.03);
  double topk = FlagDouble(argc, argv, "topk", 10);
  bool time_correlated = FlagBool(argc, argv, "time-correlated");
  bool space_constrained = FlagBool(argc, argv, "space-constrained");
  bool run_trial = FlagBool(argc, argv, "trial");

  printf("Workload profile:\n");
  printf("  write fraction:        %.0f%%\n", writes * 100);
  printf("  secondary-query ratio: %.0f%%\n", lookups * 100);
  printf("  typical top-K:         %s\n",
         topk <= 0 ? "unbounded" : std::to_string((int)topk).c_str());
  printf("  time-correlated attr:  %s\n", time_correlated ? "yes" : "no");
  printf("  space constrained:     %s\n", space_constrained ? "yes" : "no");

  // Figure 2's decision procedure.
  IndexType pick;
  printf("\nDecision trace (paper Figure 2):\n");
  if (time_correlated) {
    printf("  - attribute is time-correlated -> zone maps prune strongly\n");
    pick = IndexType::kEmbedded;
  } else if (space_constrained) {
    printf("  - space is a concern -> avoid separate index tables\n");
    pick = IndexType::kEmbedded;
  } else if (lookups < 0.05 && writes > 0.5) {
    printf("  - <5%% secondary queries and write-heavy (>50%%) -> index\n"
           "    maintenance cost dominates; keep writes cheap\n");
    pick = IndexType::kEmbedded;
  } else if (topk > 0) {
    printf("  - query-heavy with bounded top-K -> stand-alone index;\n"
           "    Lazy stops at the first level that fills the heap\n");
    pick = IndexType::kLazy;
  } else {
    printf("  - query-heavy with unbounded results -> stand-alone index;\n"
           "    Composite avoids posting-list CPU when returning everything\n");
    pick = IndexType::kComposite;
  }
  printf("  - Eager is never recommended: write amplification grows with\n"
         "    posting-list length (paper Section 5.2.1)\n");
  printf("\n>> Recommended index: %s\n", IndexTypeName(pick));

  if (!run_trial) {
    printf("\n(pass --trial to validate with a synthetic micro-benchmark)\n");
    return 0;
  }

  // Micro-trial: run the profiled mix against the recommendation and the
  // two alternatives; report mean op latency.
  printf("\nTrial: 20k ops of the profiled mix per variant...\n");
  MixedRatios ratios;
  ratios.put = writes;
  ratios.update = 0;
  ratios.lookup = lookups;
  ratios.get = std::max(0.0, 1.0 - writes - lookups);
  for (IndexType type :
       {IndexType::kEmbedded, IndexType::kLazy, IndexType::kComposite}) {
    SecondaryDBOptions options;
    options.index_type = type;
    options.indexed_attributes = {time_correlated ? "CreationTime"
                                                  : "UserID"};
    std::unique_ptr<SecondaryDB> db;
    std::string path = "./advisor_trial_" + std::string(IndexTypeName(type));
    Status s = SecondaryDB::Open(options, path, &db);
    if (!s.ok()) {
      fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }
    WorkloadGenerator gen(TweetGeneratorOptions{}, 99);
    std::vector<QueryResult> scratch;
    uint64_t t0 = Env::Posix()->NowMicros();
    for (int i = 0; i < 20000; i++) {
      Operation op = gen.NextMixed(ratios, static_cast<size_t>(topk));
      if (op.type == OpType::kLookup && time_correlated) {
        op = gen.NextTimeRangeLookup(1, static_cast<size_t>(topk));
      }
      switch (op.type) {
        case OpType::kPut:
          s = db->Put(op.key, op.document);
          break;
        case OpType::kGet: {
          std::string v;
          s = db->Get(op.key, &v);
          if (s.IsNotFound()) s = Status::OK();
          break;
        }
        case OpType::kLookup:
          s = db->Lookup(op.attribute, op.lo, op.k, &scratch);
          break;
        case OpType::kRangeLookup:
          s = db->RangeLookup(op.attribute, op.lo, op.hi, op.k, &scratch);
          break;
        default:
          break;
      }
      if (!s.ok()) {
        fprintf(stderr, "op: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    double us = (Env::Posix()->NowMicros() - t0) / 20000.0;
    printf("  %-10s %8.2f us/op%s\n", IndexTypeName(type), us,
           type == pick ? "   <- recommended" : "");
  }
  return 0;
}
