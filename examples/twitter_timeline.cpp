// Twitter timeline: the paper's motivating application. Ingest a synthetic
// tweet stream (Zipf user distribution), then serve per-user timelines —
// "the K most recent tweets of a user" — which is LOOKUP(UserID, u, K).
//
// The paper's guidance for this workload (many more reads than writes,
// small top-K, Facebook/Twitter-style): use the LAZY stand-alone index.
// This example runs the same timeline reads against Lazy and Composite so
// you can see the small-top-K advantage the paper reports.
//
//   ./twitter_timeline [n_tweets=30000]

#include <cstdio>
#include <memory>

#include "core/secondary_db.h"
#include "env/env.h"
#include "json/json.h"
#include "workload/tweet_generator.h"

using namespace leveldbpp;

static std::unique_ptr<SecondaryDB> Ingest(IndexType type,
                                           const std::string& path,
                                           uint64_t n) {
  SecondaryDBOptions options;
  options.index_type = type;
  options.indexed_attributes = {"UserID"};

  std::unique_ptr<SecondaryDB> db;
  Status s = SecondaryDB::Open(options, path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    exit(1);
  }

  TweetGeneratorOptions gen_options;
  gen_options.num_users = 2000;
  TweetGenerator gen(gen_options);
  uint64_t t0 = Env::Posix()->NowMicros();
  for (uint64_t i = 0; i < n; i++) {
    Tweet t = gen.Next();
    s = db->Put(t.tweet_id, t.ToJson());
    if (!s.ok()) {
      fprintf(stderr, "put: %s\n", s.ToString().c_str());
      exit(1);
    }
  }
  uint64_t elapsed = Env::Posix()->NowMicros() - t0;
  printf("[%s] ingested %llu tweets in %.2fs (%.0f tweets/s)\n",
         IndexTypeName(type), static_cast<unsigned long long>(n),
         elapsed / 1e6, n * 1e6 / elapsed);
  return db;
}

static void ServeTimelines(SecondaryDB* db, const char* label) {
  // Timeline = 10 most recent tweets of a user; hit a mix of very active
  // and quiet users.
  uint64_t t0 = Env::Posix()->NowMicros();
  uint64_t served = 0, tweets = 0;
  std::vector<QueryResult> timeline;
  for (uint64_t rank : {0ull, 1ull, 5ull, 25ull, 100ull, 500ull, 1500ull}) {
    std::string user = TweetGenerator::UserIdForRank(rank);
    Status s = db->Lookup("UserID", user, 10, &timeline);
    if (!s.ok()) {
      fprintf(stderr, "lookup: %s\n", s.ToString().c_str());
      exit(1);
    }
    served++;
    tweets += timeline.size();
    if (rank == 0 && !timeline.empty()) {
      json::Value doc;
      json::Parse(Slice(timeline[0].value), &doc);
      printf("  most active user's newest tweet: \"%.40s...\"\n",
             doc["Body"].as_string().c_str());
    }
  }
  uint64_t elapsed = Env::Posix()->NowMicros() - t0;
  printf("[%s] served %llu timelines (%llu tweets) in %.1f ms\n", label,
         static_cast<unsigned long long>(served),
         static_cast<unsigned long long>(tweets), elapsed / 1e3);
}

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? strtoull(argv[1], nullptr, 10) : 30000;

  auto lazy = Ingest(IndexType::kLazy, "./timeline_lazy_db", n);
  ServeTimelines(lazy.get(), "Lazy");

  auto composite = Ingest(IndexType::kComposite, "./timeline_composite_db", n);
  ServeTimelines(composite.get(), "Composite");

  printf("\nPaper guidance: for read-heavy, small-top-K timeline workloads, "
         "the Lazy\nindex is the best fit (Figure 2's decision procedure).\n");
  return 0;
}
