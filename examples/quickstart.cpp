// Quickstart: open a LevelDB++ store, write JSON documents, and query them
// by secondary attribute with each of the five index strategies.
//
//   ./quickstart [directory]   (default: ./quickstart_db)

#include <cstdio>
#include <memory>

#include "core/secondary_db.h"
#include "json/json.h"
#include "util/perf_context.h"

using namespace leveldbpp;

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "./quickstart_db";

  // 1. Configure: index the "UserID" attribute with the Lazy strategy
  //    (Cassandra-style append-only posting lists).
  SecondaryDBOptions options;
  options.index_type = IndexType::kLazy;
  options.indexed_attributes = {"UserID"};

  std::unique_ptr<SecondaryDB> db;
  Status s = SecondaryDB::Open(options, path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. PUT: values are JSON documents; the primary key is yours to choose.
  db->Put("tweet:1", R"({"UserID":"alice","Body":"hello world"})");
  db->Put("tweet:2", R"({"UserID":"bob","Body":"first!"})");
  db->Put("tweet:3", R"({"UserID":"alice","Body":"LSM trees are neat"})");
  db->Put("tweet:4", R"({"UserID":"alice","Body":"secondary indexes too"})");

  // 3. GET by primary key.
  std::string value;
  s = db->Get("tweet:2", &value);
  printf("GET tweet:2        -> %s\n", value.c_str());

  // 4. LOOKUP by secondary attribute: the 2 most recent tweets by alice.
  std::vector<QueryResult> results;
  s = db->Lookup("UserID", "alice", /*k=*/2, &results);
  printf("LOOKUP alice top-2 ->\n");
  for (const QueryResult& r : results) {
    printf("  %-8s (seq %llu): %s\n", r.primary_key.c_str(),
           static_cast<unsigned long long>(r.seq), r.value.c_str());
  }

  // 5. Updates leave stale index entries behind; queries filter them.
  db->Put("tweet:1", R"({"UserID":"carol","Body":"stolen tweet"})");
  db->Lookup("UserID", "alice", 0, &results);
  printf("after update, alice has %zu tweets (tweet:1 now carol's)\n",
         results.size());

  // 6. DELETE removes the record from every index.
  db->Delete("tweet:3");
  db->Lookup("UserID", "alice", 0, &results);
  printf("after delete, alice has %zu tweet(s)\n", results.size());

  // 7. Inspect the store.
  printf("primary table: %.1f KB, index tables: %.1f KB\n",
         db->PrimarySizeBytes() / 1024.0, db->IndexSizeBytes() / 1024.0);

  // 8. What does one query cost? PerfContext accumulates this thread's
  //    share of every engine counter (docs/METRICS.md lists them all).
  EnablePerfContext();
  GetPerfContext()->Reset();
  db->Lookup("UserID", "alice", 0, &results);
  printf("that lookup cost:\n%s", GetPerfContext()->ToString().c_str());
  DisablePerfContext();
  return 0;
}
