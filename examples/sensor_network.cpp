// Wireless sensor network: the paper's example of an EMBEDDED-index
// application — write-heavy ingest on a space-constrained device, a small
// fraction of secondary queries, and a time-correlated attribute.
//
// Sensors emit readings (measurement id, sensor id, temperature, timestamp);
// queries ask for recent readings in a temperature band or a time window.
// The Embedded index adds (almost) nothing to write cost or storage, and
// its zone maps answer time-window RANGELOOKUPs nearly for free because
// Timestamp is time-correlated.
//
//   ./sensor_network [n_readings=50000]

#include <cstdio>
#include <memory>

#include "core/secondary_db.h"
#include "env/env.h"
#include "json/json.h"
#include "util/random.h"

using namespace leveldbpp;

static std::string Reading(uint64_t id, uint32_t sensor, double temp,
                           uint64_t ts) {
  json::Object obj;
  obj["SensorID"] = json::Value("s" + std::to_string(sensor));
  char temp_buf[16];
  std::snprintf(temp_buf, sizeof(temp_buf), "%06.2f", temp);
  obj["Temperature"] = json::Value(std::string(temp_buf));
  char ts_buf[16];
  std::snprintf(ts_buf, sizeof(ts_buf), "%012llu",
                static_cast<unsigned long long>(ts));
  obj["Timestamp"] = json::Value(std::string(ts_buf));
  obj["MeasurementID"] = json::Value(static_cast<int64_t>(id));
  return json::Value(std::move(obj)).ToString();
}

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? strtoull(argv[1], nullptr, 10) : 50000;

  SecondaryDBOptions options;
  options.index_type = IndexType::kEmbedded;  // Paper's pick for sensors
  options.indexed_attributes = {"Temperature", "Timestamp"};

  std::unique_ptr<SecondaryDB> db;
  Status s = SecondaryDB::Open(options, "./sensor_db", &db);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }

  // Ingest: 20 sensors, one reading per sensor per tick, slowly drifting
  // temperatures.
  Random64 rnd(42);
  uint64_t ts = 1700000000;
  double base_temp[20];
  for (int i = 0; i < 20; i++) base_temp[i] = 15.0 + i;
  uint64_t t0 = Env::Posix()->NowMicros();
  for (uint64_t i = 0; i < n; i++) {
    uint32_t sensor = static_cast<uint32_t>(i % 20);
    if (sensor == 0) ts += 5;  // One sweep every 5 seconds
    base_temp[sensor] += (rnd.NextDouble() - 0.5) * 0.2;
    char key[32];
    std::snprintf(key, sizeof(key), "m%012llu",
                  static_cast<unsigned long long>(i));
    s = db->Put(key, Reading(i, sensor, base_temp[sensor], ts));
    if (!s.ok()) {
      fprintf(stderr, "put: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  uint64_t ingest_us = Env::Posix()->NowMicros() - t0;
  printf("ingested %llu readings in %.2fs (%.0f/s); store size %.1f MB "
         "(no separate index table)\n",
         static_cast<unsigned long long>(n), ingest_us / 1e6,
         n * 1e6 / ingest_us, db->TotalSizeBytes() / 1048576.0);

  // Query 1: the 5 most recent readings hotter than 30C.
  std::vector<QueryResult> results;
  s = db->RangeLookup("Temperature", "030.00", "099.99", 5, &results);
  printf("\n5 most recent readings above 30C:\n");
  for (const QueryResult& r : results) {
    json::Value doc;
    json::Parse(Slice(r.value), &doc);
    printf("  %s: sensor=%s temp=%s\n", r.primary_key.c_str(),
           doc["SensorID"].as_string().c_str(),
           doc["Temperature"].as_string().c_str());
  }

  // Query 2: everything from the last minute of the run (time-correlated
  // attribute -> zone maps prune almost every block).
  char lo[16], hi[16];
  std::snprintf(lo, sizeof(lo), "%012llu",
                static_cast<unsigned long long>(ts - 60));
  std::snprintf(hi, sizeof(hi), "%012llu",
                static_cast<unsigned long long>(ts));
  Statistics* stats = db->primary_statistics();
  uint64_t reads_before = stats->Get(kBlockRead);
  uint64_t pruned_before =
      stats->Get(kZoneMapBlockPruned) + stats->Get(kZoneMapFilePruned);
  s = db->RangeLookup("Timestamp", lo, hi, 0, &results);
  printf("\nlast-60s window: %zu readings, %llu block reads "
         "(%llu blocks/files zone-map-pruned)\n",
         results.size(),
         static_cast<unsigned long long>(stats->Get(kBlockRead) -
                                         reads_before),
         static_cast<unsigned long long>(stats->Get(kZoneMapBlockPruned) +
                                         stats->Get(kZoneMapFilePruned) -
                                         pruned_before));

  printf("\nPaper guidance: write-heavy + space-constrained + "
         "time-correlated queries\n=> Embedded index (Figure 2).\n");
  return 0;
}
