// Figure 8 — overhead of secondary indexes on basic LevelDB operations
// (Static workload):
//   8a: database size per variant, split into primary table + per-index
//       overhead,
//   8b: PUT time per variant, isolated into primary + CreationTime-index +
//       UserID-index components (time with one index minus time with none,
//       etc., exactly as the paper isolates them),
//   8c: GET latency per variant.
//
// Usage: bench_fig8_static [--n=40000] [--ngets=5000]

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

struct BuildResult {
  double put_us_per_op;
  uint64_t primary_bytes;
  uint64_t index_bytes;
};

BuildResult Build(IndexType type, const std::vector<std::string>& attrs,
                  const std::string& path, uint64_t n, uint64_t seed) {
  VariantConfig config;
  config.type = type;
  config.attributes = attrs;
  auto db = OpenVariant(config, path);
  WorkloadGenerator gen(TweetGeneratorOptions{}, seed);
  Timer timer;
  std::vector<QueryResult> scratch;
  for (uint64_t i = 0; i < n; i++) {
    CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
  }
  BuildResult r;
  r.put_us_per_op = static_cast<double>(timer.ElapsedMicros()) / n;
  CheckOk(db->CompactAll(), "compact");
  r.primary_bytes = db->PrimarySizeBytes();
  r.index_bytes = db->IndexSizeBytes();
  return r;
}

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 40000);
  const uint64_t ngets = flags.GetInt("ngets", 5000);
  const std::string root = ScratchRoot();

  PrintHeader("Figure 8 — index overhead on basic operations (Static)");
  printf("n=%" PRIu64 " tweets, 2 indexed attributes (UserID, CreationTime)\n",
         n);

  // Baseline: no secondary index at all (equals the NoIndex variant).
  printf("\n[build] baseline (no secondary index)...\n");
  BuildResult base = Build(IndexType::kNoIndex, {}, root + "/base", n, 1);

  struct Row {
    IndexType type;
    double primary_us, ct_us, user_us;
    uint64_t primary_bytes, ct_bytes, both_index_bytes;
    double get_us;
  };
  std::vector<Row> rows;

  for (IndexType type :
       {IndexType::kEmbedded, IndexType::kLazy, IndexType::kEager,
        IndexType::kComposite}) {
    printf("[build] %s (CreationTime only)...\n", Name(type));
    BuildResult ct = Build(type, {"CreationTime"},
                           root + "/" + Name(type) + "_ct", n, 1);
    printf("[build] %s (CreationTime + UserID)...\n", Name(type));
    const std::string both_path = root + "/" + Name(type) + "_both";
    VariantConfig config;
    config.type = type;
    auto db = OpenVariant(config, both_path);
    WorkloadGenerator gen(TweetGeneratorOptions{}, 1);
    Timer timer;
    std::vector<QueryResult> scratch;
    for (uint64_t i = 0; i < n; i++) {
      CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
    }
    double both_us = static_cast<double>(timer.ElapsedMicros()) / n;
    CheckOk(db->CompactAll(), "compact");

    Row row;
    row.type = type;
    row.primary_us = base.put_us_per_op;
    row.ct_us = std::max(0.0, ct.put_us_per_op - base.put_us_per_op);
    row.user_us = std::max(0.0, both_us - ct.put_us_per_op);
    row.primary_bytes = db->PrimarySizeBytes();
    row.ct_bytes = ct.index_bytes;
    row.both_index_bytes = db->IndexSizeBytes();

    // Figure 8c: GET latency on the fully built store.
    Histogram get_hist;
    for (uint64_t i = 0; i < ngets; i++) {
      Operation op = gen.NextGet();
      Timer t;
      CheckOk(Apply(db.get(), op, &scratch), "get");
      get_hist.Add(static_cast<double>(t.ElapsedMicros()));
    }
    row.get_us = get_hist.Average();
    rows.push_back(row);
  }

  // Baseline GET for NoIndex.
  double base_get_us;
  {
    VariantConfig config;
    config.type = IndexType::kNoIndex;
    auto db = OpenVariant(config, root + "/base");
    WorkloadGenerator gen(TweetGeneratorOptions{}, 1);
    for (uint64_t i = 0; i < n; i++) gen.NextPut();  // Re-prime sampler
    std::vector<QueryResult> scratch;
    Histogram get_hist;
    for (uint64_t i = 0; i < ngets; i++) {
      Operation op = gen.NextGet();
      Timer t;
      CheckOk(Apply(db.get(), op, &scratch), "get");
      get_hist.Add(static_cast<double>(t.ElapsedMicros()));
    }
    base_get_us = get_hist.Average();
  }

  printf("\nFig 8a — database size (MB)\n");
  printf("  %-10s %12s %14s %14s %12s\n", "variant", "primary",
         "CreationTime", "UserID(+CT)", "total");
  printf("  %-10s %12.1f %14s %14s %12.1f\n", "NoIndex",
         base.primary_bytes / 1048576.0, "-", "-",
         base.primary_bytes / 1048576.0);
  for (const Row& r : rows) {
    printf("  %-10s %12.1f %14.1f %14.1f %12.1f\n", Name(r.type),
           r.primary_bytes / 1048576.0, r.ct_bytes / 1048576.0,
           (r.both_index_bytes - r.ct_bytes) / 1048576.0,
           (r.primary_bytes + r.both_index_bytes) / 1048576.0);
  }

  printf("\nFig 8b — PUT time per op (us), stacked components\n");
  printf("  %-10s %10s %14s %12s %10s\n", "variant", "primary",
         "CreationTime", "UserID", "total");
  printf("  %-10s %10.2f %14s %12s %10.2f\n", "NoIndex", base.put_us_per_op,
         "-", "-", base.put_us_per_op);
  for (const Row& r : rows) {
    printf("  %-10s %10.2f %14.2f %12.2f %10.2f\n", Name(r.type),
           r.primary_us, r.ct_us, r.user_us,
           r.primary_us + r.ct_us + r.user_us);
  }

  printf("\nFig 8c — mean GET latency (us)\n");
  printf("  %-10s %10.2f\n", "NoIndex", base_get_us);
  for (const Row& r : rows) {
    printf("  %-10s %10.2f\n", Name(r.type), r.get_us);
  }

  printf("\nExpected shapes (paper): Embedded ~= NoIndex in both size and "
         "PUT cost;\nEager worst PUT cost (UserID component dominates); GET "
         "identical across variants.\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
