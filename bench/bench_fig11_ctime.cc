// Figure 11 — query latency on the time-correlated CreationTime index
// (Static workload). The headline: the Embedded index's zone maps have
// strong pruning power here, making it competitive with (LOOKUP) or better
// than (RANGELOOKUP) the stand-alone indexes — the opposite of Figure 10.
//   11a: LOOKUP(CreationTime) x top-K,
//   11b: RANGELOOKUP over a short window (1 minute) x top-K,
//   11c: RANGELOOKUP over a longer window (10 minutes) x top-K.
//
// Usage: bench_fig11_ctime [--n=60000] [--queries=200] [--include-eager]

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 60000);
  const uint64_t queries = flags.GetInt("queries", 200);
  const bool include_eager = flags.GetBool("include-eager", true);
  const std::string root = ScratchRoot();

  PrintHeader("Figure 11 — CreationTime (time-correlated) query latency");
  printf("n=%" PRIu64 " tweets, %" PRIu64 " queries per cell\n", n, queries);

  // The paper includes Eager in Figure 11 (it builds acceptably on a
  // time-correlated attribute).
  std::vector<IndexType> variants = VariantsWithoutEager();
  if (include_eager) variants.push_back(IndexType::kEager);

  std::vector<std::unique_ptr<SecondaryDB>> dbs;
  for (IndexType type : variants) {
    printf("[build] %s...\n", Name(type));
    VariantConfig config;
    config.type = type;
    auto db = OpenVariant(config, root + "/" + Name(type));
    WorkloadGenerator gen(TweetGeneratorOptions{}, 13);
    std::vector<QueryResult> scratch;
    for (uint64_t i = 0; i < n; i++) {
      CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
    }
    // NOTE: no forced full compaction — the paper's Static workload inserts
    // and then queries the naturally-settled LSM, which is what leaves Lazy
    // posting fragments distributed across levels (the source of its
    // small-top-K advantage).
    dbs.push_back(std::move(db));
  }

  const std::vector<size_t> topks = {5, 50, 0};
  auto TopkName = [](size_t k) {
    return k == 0 ? std::string("NoLimit") : "K=" + std::to_string(k);
  };

  printf("\nFig 11a — LOOKUP(CreationTime) latency\n");
  for (size_t k : topks) {
    printf(" top-%s\n", TopkName(k).c_str());
    for (size_t v = 0; v < variants.size(); v++) {
      WorkloadGenerator qgen(TweetGeneratorOptions{}, 13);
      for (uint64_t i = 0; i < n; i++) qgen.NextPut();
      Histogram hist;
      std::vector<QueryResult> scratch;
      for (uint64_t q = 0; q < queries; q++) {
        Operation op = qgen.NextTimeLookup(k);
        Timer t;
        CheckOk(Apply(dbs[v].get(), op, &scratch), "lookup");
        hist.Add(static_cast<double>(t.ElapsedMicros()));
      }
      PrintBoxPlotRow(Name(variants[v]), hist);
    }
  }

  for (uint64_t minutes : {1ull, 10ull}) {
    printf("\nFig 11%c — RANGELOOKUP(CreationTime), selectivity = %" PRIu64
           " minute(s)\n",
           minutes == 1 ? 'b' : 'c', minutes);
    for (size_t k : topks) {
      printf(" top-%s\n", TopkName(k).c_str());
      for (size_t v = 0; v < variants.size(); v++) {
        WorkloadGenerator qgen(TweetGeneratorOptions{}, 13);
        for (uint64_t i = 0; i < n; i++) qgen.NextPut();
        Histogram hist;
        std::vector<QueryResult> scratch;
        uint64_t nq = std::max<uint64_t>(queries / 4, 10);
        for (uint64_t q = 0; q < nq; q++) {
          Operation op = qgen.NextTimeRangeLookup(minutes, k);
          Timer t;
          CheckOk(Apply(dbs[v].get(), op, &scratch), "rangelookup");
          hist.Add(static_cast<double>(t.ElapsedMicros()));
        }
        PrintBoxPlotRow(Name(variants[v]), hist);
      }
    }
  }

  printf("\nExpected shapes (paper): Embedded competitive for LOOKUP and "
         "best for\nRANGELOOKUP at every selectivity (zone maps prune almost "
         "everything on a\ntime-correlated attribute; cost approaches K+e "
         "block reads).\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
