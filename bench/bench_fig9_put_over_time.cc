// Figure 9 — PUT performance over time as the database grows:
//   9a/9b: mean PUT latency per window, with only UserID indexed (9a) or
//          only CreationTime indexed (9b),
//   9c:    cumulative disk I/O spent compacting each INDEX table (the
//          write-amplification explosion of Eager on the non-time-
//          correlated UserID index).
//
// Usage: bench_fig9_put_over_time [--n=60000] [--windows=10] [--json]
//   --json  one JSON line per (attribute, variant, window) instead of the
//           human-readable tables (for scripts/bench_snapshot.sh).

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void RunAttribute(const std::string& attr, uint64_t n, uint64_t windows,
                  const std::string& root, bool json) {
  if (!json) {
    printf("\n--- PUT latency over time, index on %s (us/op per window) ---\n",
           attr.c_str());
  }
  const uint64_t window = n / windows;

  struct Series {
    IndexType type;
    std::vector<double> put_us;
    std::vector<uint64_t> index_compaction_bytes;
  };
  std::vector<Series> all;

  for (IndexType type : AllVariants()) {
    VariantConfig config;
    config.type = type;
    config.attributes = {attr};
    auto db = OpenVariant(config, root + "/" + attr + "_" + Name(type));
    WorkloadGenerator gen(TweetGeneratorOptions{}, 7);
    std::vector<QueryResult> scratch;

    Series series;
    series.type = type;
    for (uint64_t w = 0; w < windows; w++) {
      Timer timer;
      for (uint64_t i = 0; i < window; i++) {
        CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
      }
      series.put_us.push_back(static_cast<double>(timer.ElapsedMicros()) /
                              window);
      SecondaryIndex* index = db->index(attr);
      uint64_t bytes = 0;
      if (index != nullptr && index->index_statistics() != nullptr) {
        bytes = index->index_statistics()->Get(kCompactionBytesRead) +
                index->index_statistics()->Get(kCompactionBytesWritten);
      }
      series.index_compaction_bytes.push_back(bytes);
    }
    all.push_back(std::move(series));
  }

  if (json) {
    for (const Series& s : all) {
      for (uint64_t w = 0; w < windows; w++) {
        JsonLine("fig9_put_over_time")
            .Str("attr", attr)
            .Str("variant", Name(s.type))
            .Int("window_end", (w + 1) * window)
            .Double("put_us", s.put_us[w])
            .Double("index_compaction_mb",
                    s.index_compaction_bytes[w] / 1048576.0)
            .Emit();
      }
    }
    return;
  }

  printf("  %-10s", "window");
  for (uint64_t w = 1; w <= windows; w++) printf(" %9" PRIu64, w * window);
  printf("\n");
  for (const Series& s : all) {
    printf("  %-10s", Name(s.type));
    for (double v : s.put_us) printf(" %9.2f", v);
    printf("\n");
  }

  printf("\n--- Fig 9c — cumulative index-table compaction I/O (MB) ---\n");
  printf("  %-10s", "window");
  for (uint64_t w = 1; w <= windows; w++) printf(" %9" PRIu64, w * window);
  printf("\n");
  for (const Series& s : all) {
    if (s.type == IndexType::kNoIndex || s.type == IndexType::kEmbedded) {
      continue;  // No separate index table.
    }
    printf("  %-10s", Name(s.type));
    for (uint64_t v : s.index_compaction_bytes) {
      printf(" %9.1f", v / 1048576.0);
    }
    printf("\n");
  }
}

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 60000);
  const uint64_t windows = flags.GetInt("windows", 10);
  const bool json = flags.GetBool("json", false);
  const std::string root = ScratchRoot();

  if (!json) {
    PrintHeader("Figure 9 — PUT performance over time");
    printf("n=%" PRIu64 " tweets, %" PRIu64 " sample windows\n", n, windows);
  }

  RunAttribute("UserID", n, windows, root, json);   // Fig 9a (+9c UserID)
  RunAttribute("CreationTime", n, windows, root, json);  // Fig 9b (+9c CT)

  if (!json) {
    printf("\nExpected shapes (paper): all variants flat over time except "
           "Eager;\nEager's UserID curve climbs (compaction I/O grows "
           "super-linearly) while its\nCreationTime curve stays moderate "
           "(sequential list growth compacts cheaply).\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
