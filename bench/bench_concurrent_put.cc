// Concurrent Put throughput: group-commit writer queue + background
// compaction vs. the synchronous paper mode, across 1/2/4/8 writer threads.
//
// This bench is NOT one of the paper's figures — the paper deliberately
// measures a single-threaded engine. It quantifies what the opt-in
// concurrent write path buys: writers share WAL appends through the
// group-commit queue and never pay flush/compaction latency inline
// (they stall only through the slowdown/stop ladder).
//
// Foreground throughput is reported over the Put() calls only; the
// remaining background compaction debt is then drained and reported
// separately, so the output shows both the latency writers observed and the
// total work the engine did.
//
// Output: one JSON object per line, e.g.
//   {"bench":"concurrent_put","mode":"background","threads":4,...}

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "harness.h"

#include "db/db_impl.h"
#include "env/statistics.h"

namespace leveldbpp {
namespace bench {
namespace {

// The simulated device-commit latency lives in harness.h (TableLatencyEnv):
// a blocking sleep in Sync() of table (.ldb) files only, leaving WAL
// appends/syncs — and so the foreground group-commit path — untouched.

struct Result {
  uint64_t put_micros = 0;    // Wall time of the foreground Put phase
  uint64_t drain_micros = 0;  // Draining leftover background debt
  uint64_t stall_micros = 0;
  uint64_t slowdown_micros = 0;
  uint64_t group_batches = 0;
  uint64_t group_writes = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t wal_bytes = 0;
  uint64_t compaction_bytes_written = 0;
  // Split of compaction bytes: done during the Put window vs. in the drain.
  uint64_t compaction_bytes_in_window = 0;
  double flush_queue_depth_max = 0;  // Deepest imm queue seen at a rotation
};

struct Geometry {
  size_t write_buffer_size = 1 << 20;
  size_t max_file_size = 512 << 10;
  uint64_t max_bytes_for_level_base = 2 << 20;
  // Generous stall-ladder headroom (bg mode only; sync mode has no ladder).
  // The background thread naturally batches the accumulated L0 files into
  // one L1 rewrite, where the synchronous mode rewrites L1 once per
  // l0_compaction_trigger flushes. A write-only workload tolerates a deep
  // L0 (nothing reads it mid-run); each 1 ms slowdown sleep also donates
  // the CPU to the compactor, so a low trigger throttles writers twice.
  int l0_slowdown = 44;
  int l0_stop = 68;
  // Immutable-memtable queue depth (background mode only): 1 is the classic
  // single-slot handoff; deeper queues let writers rotate into a fresh
  // memtable while several flushes are still pending.
  int max_imm = 1;
  // Simulated device-commit latency per table-file Sync (TableLatencyEnv);
  // 0 benches the raw page-cached scratch directory.
  uint32_t table_sync_latency_us = 0;
};

// Workload shape. Sustained (burst_ops = 0) hammers Put in a closed loop —
// steady-state throughput is then bounded by the single background thread's
// flush+compaction rate no matter how deep the imm queue is, so --max_imm
// mostly shows up as stall/slowdown accounting shifts. Bursty (burst_ops >
// 0) alternates request spikes with idle gaps, the traffic pipelined flush
// is for: a depth-N queue absorbs a burst of ~N memtables at memtable speed
// while the flushes drain during the gap; a depth-1 queue parks the burst's
// writers behind each in-flight flush. put_micros counts only the in-burst
// time (the latency clients would see), never the gaps.
struct Shape {
  uint64_t burst_ops = 0;   // Ops per burst across all threads (0 = sustained)
  uint64_t gap_ms = 0;      // Idle time between bursts
};

Result RunOnce(bool background, int threads, uint64_t total_ops,
               size_t value_size, const Geometry& geo, const Shape& shape) {
  std::string path = ScratchRoot() + "/concput_" +
                     (background ? "bg" : "sync") + "_" +
                     std::to_string(threads);
  DestroyTree(path);

  Statistics stats;
  TableLatencyEnv latency_env(Env::Posix(), geo.table_sync_latency_us);
  Options options;
  options.env = &latency_env;
  options.create_if_missing = true;
  // Small memtables against a large L1 budget: this is where inline
  // compaction hurts most (sync mode rewrites the L1 overlap once per L0
  // trigger; the background thread absorbs several more L0 files per
  // rewrite because the stall ladder lets them accumulate).
  options.write_buffer_size = geo.write_buffer_size;
  options.max_file_size = geo.max_file_size;
  options.max_bytes_for_level_base = geo.max_bytes_for_level_base;
  options.l0_slowdown_writes_trigger = geo.l0_slowdown;
  options.l0_stop_writes_trigger = geo.l0_stop;
  options.background_compaction = background;
  options.max_immutable_memtables = geo.max_imm;
  options.statistics = &stats;

  DBImpl* raw = nullptr;
  CheckOk(DBImpl::Open(options, path, &raw), "open");
  std::unique_ptr<DBImpl> db(raw);

  const std::string value(value_size, 'v');
  std::atomic<bool> failed{false};

  // One burst = `count` ops split across the threads, starting at global op
  // index `base` so the key stream is identical regardless of burst size.
  auto run_burst = [&](uint64_t base, uint64_t count) {
    const uint64_t per_thread = count / threads;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; t++) {
      workers.emplace_back([&, t]() {
        char key[32];
        for (uint64_t i = 0; i < per_thread && !failed.load(); i++) {
          // fillrandom: keys scattered over the whole space, so every
          // flushed file overlaps every level and compactions are real
          // merges, never trivial moves (sequential keys would make
          // compaction nearly free and hide the cost the background thread
          // takes off the write path).
          uint64_t x = ((base / threads + i) * static_cast<uint64_t>(threads) +
                        t) * 2654435761u;
          std::snprintf(key, sizeof(key), "key%016llu",
                        static_cast<unsigned long long>(x % 100000000));
          if (!db->Put(WriteOptions(), key, value).ok()) {
            failed.store(true);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  };

  Result r;
  if (shape.burst_ops == 0) {
    Timer timer;
    run_burst(0, total_ops);
    r.put_micros = timer.ElapsedMicros();
  } else {
    for (uint64_t done = 0; done < total_ops && !failed.load();) {
      const uint64_t count = std::min(shape.burst_ops, total_ops - done);
      Timer timer;
      run_burst(done, count);
      r.put_micros += timer.ElapsedMicros();  // In-burst time only
      done += count;
      if (done < total_ops && shape.gap_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(shape.gap_ms));
      }
    }
  }
  r.compaction_bytes_in_window = stats.Get(kCompactionBytesWritten);
  if (failed.load()) {
    std::fprintf(stderr, "put failed\n");
    std::exit(1);
  }

  Timer drain_timer;
  CheckOk(db->WaitForBackgroundWork(), "drain");
  r.drain_micros = drain_timer.ElapsedMicros();

  r.stall_micros = stats.Get(kWriteStallMicros);
  r.slowdown_micros = stats.Get(kWriteSlowdownMicros);
  r.group_batches = stats.Get(kGroupCommitBatches);
  r.group_writes = stats.Get(kGroupCommitWrites);
  r.flushes = stats.Get(kFlushCount);
  r.compactions = stats.Get(kCompactionCount);
  r.wal_bytes = stats.Get(kWalBytesWritten);
  r.compaction_bytes_written = stats.Get(kCompactionBytesWritten);
  r.flush_queue_depth_max = stats.GetHistogram(kHistFlushQueueDepth).Max();

  db.reset();
  DestroyTree(path);
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  using namespace leveldbpp;
  using namespace leveldbpp::bench;

  Flags flags(argc, argv);
  const uint64_t total_ops = flags.GetInt("ops", 150000);
  const size_t value_size = flags.GetInt("value_size", 512);
  Geometry geo;
  geo.write_buffer_size = flags.GetInt("write_buffer", geo.write_buffer_size);
  geo.max_file_size = flags.GetInt("max_file_size", geo.max_file_size);
  geo.max_bytes_for_level_base =
      flags.GetInt("level_base", geo.max_bytes_for_level_base);
  geo.l0_slowdown = static_cast<int>(flags.GetInt("l0_slowdown", geo.l0_slowdown));
  geo.l0_stop = static_cast<int>(flags.GetInt("l0_stop", geo.l0_stop));
  geo.max_imm = static_cast<int>(flags.GetInt("max_imm", geo.max_imm));
  geo.table_sync_latency_us = static_cast<uint32_t>(
      flags.GetInt("table_sync_latency_us", geo.table_sync_latency_us));
  Shape shape;
  shape.burst_ops = flags.GetInt("burst_ops", shape.burst_ops);
  shape.gap_ms = flags.GetInt("burst_gap_ms", shape.gap_ms);
  std::vector<int> thread_counts;
  {
    std::string spec = flags.GetString("threads", "1,2,4,8");
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      int n = std::atoi(spec.substr(pos, comma - pos).c_str());
      if (n > 0) thread_counts.push_back(n);
      pos = comma + 1;
    }
    if (thread_counts.empty()) {
      std::fprintf(stderr, "bad --threads spec \"%s\" (want e.g. 1,2,4)\n",
                   spec.c_str());
      return 1;
    }
  }

  for (bool background : {false, true}) {
    for (int threads : thread_counts) {
      // Sync mode is measured multi-threaded too (the queue makes it safe);
      // the gap against background mode is the point of the bench.
      const uint64_t ops = (total_ops / threads) * threads;  // evenly split
      Result r = RunOnce(background, threads, ops, value_size, geo, shape);
      const double put_secs = r.put_micros / 1e6;
      const double kops = put_secs > 0 ? (ops / 1000.0) / put_secs : 0;
      std::printf(
          "{\"bench\":\"concurrent_put\",\"mode\":\"%s\",\"threads\":%d,"
          "\"max_imm\":%d,\"table_sync_latency_us\":%u,"
          "\"burst_ops\":%llu,\"burst_gap_ms\":%llu,"
          "\"ops\":%llu,\"value_size\":%zu,\"put_micros\":%llu,"
          "\"drain_micros\":%llu,\"kops_per_sec\":%.1f,"
          "\"stall_micros\":%llu,\"slowdown_micros\":%llu,"
          "\"group_batches\":%llu,\"group_writes\":%llu,"
          "\"flushes\":%llu,\"compactions\":%llu,"
          "\"wal_bytes\":%llu,\"compaction_bytes_written\":%llu,"
          "\"compaction_bytes_in_window\":%llu,"
          "\"flush_queue_depth_max\":%.0f}\n",
          background ? "background" : "sync", threads, geo.max_imm,
          geo.table_sync_latency_us,
          static_cast<unsigned long long>(shape.burst_ops),
          static_cast<unsigned long long>(shape.gap_ms),
          static_cast<unsigned long long>(ops), value_size,
          static_cast<unsigned long long>(r.put_micros),
          static_cast<unsigned long long>(r.drain_micros), kops,
          static_cast<unsigned long long>(r.stall_micros),
          static_cast<unsigned long long>(r.slowdown_micros),
          static_cast<unsigned long long>(r.group_batches),
          static_cast<unsigned long long>(r.group_writes),
          static_cast<unsigned long long>(r.flushes),
          static_cast<unsigned long long>(r.compactions),
          static_cast<unsigned long long>(r.wal_bytes),
          static_cast<unsigned long long>(r.compaction_bytes_written),
          static_cast<unsigned long long>(r.compaction_bytes_in_window),
          r.flush_queue_depth_max);
      std::fflush(stdout);
    }
  }
  return 0;
}
