// Appendix C.1 — effect of the Embedded index's bloom-filter length.
// Longer filters lower the false-positive rate (fewer wasted block reads)
// but cost more memory and more hash probes per check; the paper sweeps
// bits/key and settles on 20 for its datasets.
//
// Usage: bench_appendix_c1_bloom [--n=40000] [--queries=200]

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 40000);
  const uint64_t queries = flags.GetInt("queries", 200);
  const std::string root = ScratchRoot();

  PrintHeader("Appendix C.1 — Embedded bloom filter bits/key sweep");
  printf("n=%" PRIu64 " tweets, %" PRIu64
         " LOOKUP(UserID, K=10) queries per setting\n",
         n, queries);
  printf("\n  %-9s %12s %12s %14s %14s %12s\n", "bits/key", "median(us)",
         "mean(us)", "blocks read", "bloom checks", "positives");

  for (int bits : {5, 10, 20, 30}) {
    VariantConfig config;
    config.type = IndexType::kEmbedded;
    config.attributes = {"UserID"};
    config.embedded_bits_per_key = bits;
    auto db =
        OpenVariant(config, root + "/bloom" + std::to_string(bits));
    WorkloadGenerator gen(TweetGeneratorOptions{}, 51);
    std::vector<QueryResult> scratch;
    for (uint64_t i = 0; i < n; i++) {
      CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
    }
    CheckOk(db->CompactAll(), "compact");

    Histogram hist;
    Statistics* stats = db->primary_statistics();
    uint64_t reads0 = stats->Get(kBlockRead);
    uint64_t checks0 = stats->Get(kBloomSecondaryChecked);
    uint64_t useful0 = stats->Get(kBloomSecondaryUseful);
    uint64_t matched = 0;
    for (uint64_t q = 0; q < queries; q++) {
      Operation op = gen.NextUserLookup(10);
      Timer t;
      CheckOk(Apply(db.get(), op, &scratch), "lookup");
      hist.Add(static_cast<double>(t.ElapsedMicros()));
      matched += scratch.size();
    }
    uint64_t reads = stats->Get(kBlockRead) - reads0;
    uint64_t checks = stats->Get(kBloomSecondaryChecked) - checks0;
    uint64_t useful = stats->Get(kBloomSecondaryUseful) - useful0;
    // Positive probes = blocks that had to be read; the share that is
    // false positives shrinks with bits/key (most remaining positives on a
    // hot attribute value are genuine).
    uint64_t positives = checks - useful;
    (void)matched;
    printf("  %-9d %12.1f %12.1f %14llu %14llu %12llu\n", bits,
           hist.Median(), hist.Average(),
           static_cast<unsigned long long>(reads),
           static_cast<unsigned long long>(checks),
           static_cast<unsigned long long>(positives));
  }

  printf("\nExpected shape (paper): false-positive block reads drop steeply "
         "up to ~20\nbits/key, then flatten while per-check CPU keeps "
         "growing — 20 is the sweet spot.\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
