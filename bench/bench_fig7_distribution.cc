// Figure 7 — rank-frequency distribution of the UserID attribute in the
// generated dataset. The paper's seed crawl shows a power law (slope ~ -1
// on log-log axes) with ~30 tweets per user on average; the synthetic
// generator must preserve it. This bench prints the distribution and a
// log-log regression slope so the match is checkable.
//
// Usage: bench_fig7_distribution [--n=200000]

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 200000);

  PrintHeader("Figure 7 — UserID rank-frequency distribution");

  TweetGeneratorOptions options;
  TweetGenerator gen(options);
  std::map<std::string, uint64_t> counts;
  for (uint64_t i = 0; i < n; i++) {
    counts[gen.Next().user_id]++;
  }

  std::vector<uint64_t> freqs;
  freqs.reserve(counts.size());
  for (const auto& [user, c] : counts) freqs.push_back(c);
  std::sort(freqs.rbegin(), freqs.rend());

  printf("tweets=%" PRIu64 ", distinct users=%zu, avg tweets/user=%.1f "
         "(paper seed: ~30)\n",
         n, freqs.size(), static_cast<double>(n) / freqs.size());

  printf("\n  %-8s %-12s\n", "rank", "frequency");
  for (size_t rank = 1; rank <= freqs.size(); rank *= 4) {
    printf("  %-8zu %-12llu\n", rank,
           static_cast<unsigned long long>(freqs[rank - 1]));
  }

  // Log-log least-squares slope over the head of the distribution.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t m = std::min<size_t>(freqs.size(), 1000);
  for (size_t i = 0; i < m; i++) {
    double x = std::log(static_cast<double>(i + 1));
    double y = std::log(static_cast<double>(freqs[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  printf("\nlog-log slope over top-%zu ranks: %.2f (paper's Figure 7 shows "
         "a power law,\nslope ~ -1)\n",
         m, slope);
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
