// Parallel secondary-index query throughput: top-K LOOKUP and RANGELOOKUP
// across all five index variants at read_parallelism 0 / 2 / 4 / 8.
//
// This bench is NOT one of the paper's figures — the paper measures a
// strictly sequential read path (our read_parallelism = 0 mode, which stays
// the default and byte-for-byte identical to the paper's algorithms). It
// quantifies the opt-in fan-out: Lazy / Eager / Composite resolve their
// index candidates through batched MultiGet probe groups, Embedded reads
// and pre-filters its candidate blocks concurrently. Every parallel run is
// checked against the sequential run's results (hash over primary keys,
// sequence numbers and values) — the speedup must come with byte-identical
// answers.
//
// Output: one JSON object per line, e.g.
//   {"bench":"parallel_query","variant":"Lazy","query":"lookup",
//    "parallelism":4,...,"speedup":2.31,"identical":true}

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"

#include "env/statistics.h"

namespace leveldbpp {
namespace bench {
namespace {

// Forwarding Env that charges a fixed latency per random-access read,
// emulating the SSD/HDD random-read cost the paper's experiments pay and a
// page-cached tmpfs does not. The parallel read path exists to hide exactly
// this latency; --read_latency_us=0 benches the raw in-memory engine.
//
// The latency is a BLOCKING sleep, not a busy-wait: a real storage read
// leaves the thread parked in the kernel with the CPU free, which is what
// lets concurrent reads overlap (including on a single-CPU host). The
// kernel rounds short sleeps up by tens of microseconds; that inflation
// applies identically at every parallelism level, so speedups still
// compare like for like.
class LatencyEnv : public Env {
 public:
  LatencyEnv(Env* base, uint32_t read_latency_us)
      : base_(base), latency_us_(read_latency_us) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::unique_ptr<RandomAccessFile> file;
    Status s = base_->NewRandomAccessFile(fname, &file);
    if (s.ok()) {
      result->reset(new LatencyFile(std::move(file), latency_us_));
    }
    return s;
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return base_->NewWritableFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }

 private:
  class LatencyFile : public RandomAccessFile {
   public:
    LatencyFile(std::unique_ptr<RandomAccessFile> base, uint32_t latency_us)
        : base_(std::move(base)), latency_us_(latency_us) {}
    Status Read(uint64_t offset, size_t n, Slice* result,
                char* scratch) const override {
      if (latency_us_ > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
      }
      return base_->Read(offset, n, result, scratch);
    }

   private:
    std::unique_ptr<RandomAccessFile> base_;
    uint32_t latency_us_;
  };

  Env* base_;
  uint32_t latency_us_;
};

// Order- and content-sensitive digest of a query's result list.
uint64_t HashResults(const std::vector<QueryResult>& results) {
  std::hash<std::string> hasher;
  uint64_t h = 1469598103934665603ull;
  std::string flat;
  for (const QueryResult& r : results) {
    flat = r.primary_key + '@' + std::to_string(r.seq) + '=' + r.value;
    h = (h ^ hasher(flat)) * 1099511628211ull;
  }
  return h;
}

struct QueryRun {
  uint64_t micros = 0;
  uint64_t multiget_batches = 0;
  uint64_t multiget_keys = 0;
  uint64_t parallel_tasks = 0;
  uint64_t parallel_wait_micros = 0;
  std::vector<uint64_t> hashes;  // One digest per query, in order
};

QueryRun RunQueries(SecondaryDB* db, const std::vector<Operation>& ops) {
  Statistics* stats = db->primary_statistics();
  stats->Reset();
  QueryRun run;
  run.hashes.reserve(ops.size());
  std::vector<QueryResult> results;
  Timer timer;
  for (const Operation& op : ops) {
    CheckOk(Apply(db, op, &results), "query");
    run.hashes.push_back(HashResults(results));
  }
  run.micros = timer.ElapsedMicros();
  run.multiget_batches = stats->Get(kMultiGetBatches);
  run.multiget_keys = stats->Get(kMultiGetKeys);
  run.parallel_tasks = stats->Get(kParallelTasks);
  run.parallel_wait_micros = stats->Get(kParallelWaitMicros);
  return run;
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  using namespace leveldbpp;
  using namespace leveldbpp::bench;

  Flags flags(argc, argv);
  const uint64_t num_inserts = flags.GetInt("inserts", 40000);
  const uint64_t num_queries = flags.GetInt("queries", 120);
  const size_t k = flags.GetInt("k", 20);
  const uint64_t range_minutes = flags.GetInt("range_minutes", 2);
  const uint32_t read_latency_us =
      static_cast<uint32_t>(flags.GetInt("read_latency_us", 50));
  LatencyEnv latency_env(Env::Posix(), read_latency_us);

  std::vector<int> parallelisms;
  {
    std::string spec = flags.GetString("parallelism", "0,2,4,8");
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      parallelisms.push_back(std::atoi(spec.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
  }
  if (parallelisms.empty() || parallelisms.front() != 0) {
    // Parallelism 0 must run first: it is the equivalence baseline.
    parallelisms.insert(parallelisms.begin(), 0);
  }

  const std::string variant_filter = flags.GetString("variants", "");

  PrintHeader("Parallel query engine: top-K lookups vs read_parallelism");

  for (IndexType type : AllVariants()) {
    if (variant_filter.empty()) {
      // NoIndex answers every query with a full primary scan — there is no
      // candidate-resolution phase to fan out, so it is excluded by
      // default (pass --variants=NoIndex,... to include it).
      if (type == IndexType::kNoIndex) continue;
    } else if (variant_filter.find(Name(type)) == std::string::npos) {
      continue;
    }
    const std::string path =
        ScratchRoot() + "/parq_" + std::string(Name(type));
    DestroyTree(path);

    // Build phase (paper's Static shape): insert, 10% updates, then fully
    // compact so the query phase reads a settled multi-level tree.
    std::vector<Operation> lookups, ranges;
    const uint64_t num_users = num_inserts / 30;  // Seed's ~30 tweets/user
    {
      VariantConfig config;
      config.type = type;
      config.env = &latency_env;
      std::unique_ptr<SecondaryDB> db = OpenVariant(config, path);
      TweetGeneratorOptions tweet_options;
      tweet_options.num_users = num_users;
      WorkloadGenerator gen(tweet_options, /*seed=*/20180610);
      for (uint64_t i = 0; i < num_inserts; i++) {
        CheckOk(Apply(db.get(), gen.NextPut(), nullptr), "put");
        if (i % 10 == 9) {
          CheckOk(Apply(db.get(), gen.NextUpdate(), nullptr), "update");
        }
      }
      CheckOk(db->CompactAll(), "compact");
      // Sample the query mix once so every parallelism level replays the
      // identical operation list. Lookup users are sampled UNIFORMLY by
      // Zipf rank (not tweet-frequency-weighted): for the few hot users a
      // query's cost is the index scan over thousands of entries, which no
      // candidate fan-out can help; the typical user's lookup is dominated
      // by the ~K candidate record fetches being parallelized.
      for (uint64_t q = 0; q < num_queries; q++) {
        Operation op;
        op.type = OpType::kLookup;
        op.attribute = "UserID";
        op.lo = TweetGenerator::UserIdForRank(q * num_users / num_queries);
        op.k = k;
        lookups.push_back(std::move(op));
        ranges.push_back(gen.NextTimeRangeLookup(range_minutes, k));
      }
    }

    // Query phase: reopen per parallelism level (cold TableCache each time,
    // so levels compare fairly) and replay the same queries.
    QueryRun lookup_base, range_base;
    for (int parallelism : parallelisms) {
      VariantConfig config;
      config.type = type;
      config.read_parallelism = parallelism;
      config.env = &latency_env;
      std::unique_ptr<SecondaryDB> db = OpenVariant(config, path);

      struct {
        const char* name;
        const std::vector<Operation>* ops;
        QueryRun* base;
      } phases[] = {{"lookup", &lookups, &lookup_base},
                    {"rangelookup", &ranges, &range_base}};
      for (const auto& phase : phases) {
        QueryRun run = RunQueries(db.get(), *phase.ops);
        const bool is_base = (parallelism == 0);
        if (is_base) *phase.base = run;
        const double speedup =
            run.micros > 0
                ? static_cast<double>(phase.base->micros) / run.micros
                : 0.0;
        JsonLine("parallel_query")
            .Str("variant", Name(type))
            .Str("query", phase.name)
            .Int("parallelism", static_cast<uint64_t>(parallelism))
            .Int("inserts", num_inserts)
            .Int("queries", phase.ops->size())
            .Int("k", k)
            .Int("read_latency_us", read_latency_us)
            .Int("micros", run.micros)
            .Double("queries_per_sec",
                    run.micros > 0
                        ? phase.ops->size() * 1e6 / run.micros
                        : 0.0)
            .Double("speedup", speedup)
            .Bool("identical", run.hashes == phase.base->hashes)
            .Int("multiget_batches", run.multiget_batches)
            .Int("multiget_keys", run.multiget_keys)
            .Int("parallel_tasks", run.parallel_tasks)
            .Int("parallel_wait_micros", run.parallel_wait_micros)
            .Emit();
        if (run.hashes != phase.base->hashes) {
          fprintf(stderr,
                  "FATAL: %s %s parallelism=%d diverged from sequential\n",
                  Name(type), phase.name, parallelism);
          return 1;
        }
      }
    }
    DestroyTree(path);
  }
  return 0;
}
