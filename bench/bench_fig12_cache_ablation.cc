// Figure 12 ablation — the OS buffer-cache inflection. The paper observes a
// performance jump in the write-heavy mixed workload "at about 6GB of data
// which is the RAM size ... the OS buffer cache becomes more ineffective",
// and attributes post-compaction slowdowns to cache invalidation (the
// compacted data moves to new file offsets).
//
// Real OS caching is invisible to a userspace store, so this bench runs the
// mixed workload over the simulated page-cache Env (a strict LRU of 4KB
// pages with compaction-invalidation semantics) at several simulated "RAM"
// sizes, and reports the read hit rate per window. The inflection appears
// as the hit rate collapsing once the dataset outgrows the simulated RAM.
//
// Usage: bench_fig12_cache_ablation [--ops=40000] [--windows=10]

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t ops = flags.GetInt("ops", 50000);
  const uint64_t windows = flags.GetInt("windows", 10);
  const std::string root = ScratchRoot();

  PrintHeader("Figure 12 ablation — simulated OS buffer cache inflection");
  printf("write-heavy mix, Composite index, ops=%" PRIu64 "\n", ops);

  const uint64_t window = ops / windows;
  for (uint64_t ram_mb : {1ull, 4ull, 64ull}) {
    // One shared stats object records the page-cache hits; each window also
    // needs the raw block-read count, so reads come from the same object.
    auto stats = std::make_unique<Statistics>();
    std::unique_ptr<Env> sim_env(
        NewPageCacheSimEnv(Env::Posix(), ram_mb << 20, stats.get()));

    SecondaryDBOptions options;
    options.base.env = sim_env.get();
    options.base.write_buffer_size = 1 << 20;
    options.base.max_file_size = 512 << 10;
    options.base.max_bytes_for_level_base = 4 << 20;
    options.index_type = IndexType::kComposite;
    options.indexed_attributes = {"UserID"};
    std::unique_ptr<SecondaryDB> db;
    CheckOk(SecondaryDB::Open(options,
                              root + "/ram" + std::to_string(ram_mb), &db),
            "open");

    WorkloadGenerator gen(TweetGeneratorOptions{}, 77);
    std::vector<QueryResult> scratch;
    printf("\n  simulated RAM = %llu MB\n",
           static_cast<unsigned long long>(ram_mb));
    printf("    %-10s", "window");
    for (uint64_t w = 1; w <= windows; w++) printf(" %8" PRIu64, w * window);
    printf("\n    %-10s", "hit-rate");
    uint64_t prev_hits = 0, prev_reads = 0;
    for (uint64_t w = 0; w < windows; w++) {
      for (uint64_t i = 0; i < window; i++) {
        CheckOk(Apply(db.get(),
                      gen.NextMixed(MixedRatios::WriteHeavy(), 10),
                      &scratch),
                "op");
      }
      uint64_t hits = stats->Get(kPageCacheHit);
      uint64_t reads = db->TotalTicker(kBlockRead);
      uint64_t dh = hits - prev_hits, dr = reads - prev_reads;
      prev_hits = hits;
      prev_reads = reads;
      printf(" %7.1f%%", dr == 0 ? 100.0 : 100.0 * dh / dr);
      fflush(stdout);
    }
    printf("\n    final store size: %.1f MB\n",
           db->TotalSizeBytes() / 1048576.0);
  }

  printf("\nExpected shape (paper): with RAM smaller than the final store, "
         "the hit\nrate collapses once the dataset outgrows it (the Figure-12 "
         "inflection);\nwith RAM larger than the store it stays high "
         "throughout.\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
