// Appendix C.2 — effect of per-block compression (the paper's Snappy; here
// the SimpleLZ substitute) on store size and operation latency, for the
// Embedded and Lazy variants.
//
// Usage: bench_appendix_c2_compression [--n=40000] [--queries=200]

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 40000);
  const uint64_t queries = flags.GetInt("queries", 200);
  const std::string root = ScratchRoot();

  PrintHeader("Appendix C.2 — block compression on vs off");
  printf("n=%" PRIu64 " tweets\n", n);
  printf("\n  %-10s %-6s %10s %10s %10s %12s\n", "variant", "comp",
         "size(MB)", "put(us)", "get(us)", "lookup(us)");

  for (IndexType type : {IndexType::kEmbedded, IndexType::kLazy,
                         IndexType::kComposite}) {
    for (bool compressed : {true, false}) {
      VariantConfig config;
      config.type = type;
      config.attributes = {"UserID"};
      config.compression =
          compressed ? kSimpleLZCompression : kNoCompression;
      auto db = OpenVariant(config, root + "/" + Name(type) +
                                        (compressed ? "_lz" : "_raw"));
      WorkloadGenerator gen(TweetGeneratorOptions{}, 61);
      std::vector<QueryResult> scratch;
      Timer put_timer;
      for (uint64_t i = 0; i < n; i++) {
        CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
      }
      double put_us = static_cast<double>(put_timer.ElapsedMicros()) / n;
      CheckOk(db->CompactAll(), "compact");

      Histogram get_hist, lookup_hist;
      for (uint64_t q = 0; q < queries; q++) {
        Operation get_op = gen.NextGet();
        Timer t1;
        CheckOk(Apply(db.get(), get_op, &scratch), "get");
        get_hist.Add(static_cast<double>(t1.ElapsedMicros()));

        Operation lk = gen.NextUserLookup(10);
        Timer t2;
        CheckOk(Apply(db.get(), lk, &scratch), "lookup");
        lookup_hist.Add(static_cast<double>(t2.ElapsedMicros()));
      }

      printf("  %-10s %-6s %10.1f %10.2f %10.2f %12.1f\n", Name(type),
             compressed ? "LZ" : "none",
             db->TotalSizeBytes() / 1048576.0, put_us, get_hist.Average(),
             lookup_hist.Average());
    }
  }

  printf("\nExpected shape (paper): compression shrinks every variant "
         "(random bodies\nlimit the ratio); queries pay a small "
         "decompression cost per block read but\nsave on bytes moved.\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
