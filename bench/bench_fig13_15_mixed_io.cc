// Figures 13 / 14 / 15 — cumulative disk I/O under the three Mixed
// workloads, attributed per operation class exactly as the paper does:
//   (a) compaction I/O (bytes read+written by flushes/compactions across
//       the primary AND index tables),
//   (b) block reads performed by GET operations,
//   (c) block reads performed by LOOKUP operations.
//
// Attribution comes from the thread-local PerfContext: resetting it before
// a GET or LOOKUP and reading kBlockRead after yields exactly that
// operation's reads, on any thread and at any read_parallelism. The older
// global-ticker differencing (sound here because the engine is synchronous
// and single-threaded in this bench) is kept as a cross-check — the run
// aborts if the two attributions ever disagree.
//
// Usage: bench_fig13_15_mixed_io [--ops=60000] [--windows=10]
//                                [--workload=write|read|update|all]

#include <unistd.h>

#include "harness.h"
#include "util/perf_context.h"

namespace leveldbpp {
namespace bench {
namespace {

struct IoSeries {
  std::vector<double> compaction_mb;
  std::vector<uint64_t> get_reads;
  std::vector<uint64_t> lookup_reads;
};

IoSeries RunOne(IndexType type, const MixedRatios& ratios, uint64_t ops,
                uint64_t windows, const std::string& path) {
  VariantConfig config;
  config.type = type;
  config.attributes = {"UserID"};
  auto db = OpenVariant(config, path);
  WorkloadGenerator gen(TweetGeneratorOptions{}, 31);
  std::vector<QueryResult> scratch;

  PerfContext* perf = GetPerfContext();
  EnablePerfContext();

  const uint64_t window = ops / windows;
  IoSeries series;
  uint64_t get_reads = 0, lookup_reads = 0;

  for (uint64_t w = 0; w < windows; w++) {
    for (uint64_t i = 0; i < window; i++) {
      Operation op = gen.NextMixed(ratios, /*lookup_k=*/10);
      if (op.type == OpType::kGet || op.type == OpType::kLookup) {
        uint64_t before = db->TotalTicker(kBlockRead);
        perf->Reset();
        CheckOk(Apply(db.get(), op, &scratch), "op");
        uint64_t delta = perf->TickerValue(kBlockRead);
        uint64_t global_delta = db->TotalTicker(kBlockRead) - before;
        if (delta != global_delta) {
          fprintf(stderr,
                  "attribution mismatch: PerfContext saw %llu block reads, "
                  "global tickers %llu\n",
                  static_cast<unsigned long long>(delta),
                  static_cast<unsigned long long>(global_delta));
          abort();
        }
        if (op.type == OpType::kGet) {
          get_reads += delta;
        } else {
          lookup_reads += delta;
        }
      } else {
        CheckOk(Apply(db.get(), op, &scratch), "op");
      }
    }
    double compaction_mb =
        (db->TotalTicker(kCompactionBytesRead) +
         db->TotalTicker(kCompactionBytesWritten)) /
        1048576.0;
    series.compaction_mb.push_back(compaction_mb);
    series.get_reads.push_back(get_reads);
    series.lookup_reads.push_back(lookup_reads);
  }
  DisablePerfContext();
  return series;
}

void PrintSeries(const char* title, const std::vector<IndexType>& variants,
                 const std::vector<IoSeries>& all, uint64_t window,
                 double IoSeries::*unused, int which) {
  (void)unused;
  printf("\n  (%c) %s\n", 'a' + which, title);
  printf("    %-10s", "window");
  for (size_t w = 1; w <= all[0].compaction_mb.size(); w++) {
    printf(" %9zu", w * window);
  }
  printf("\n");
  for (size_t v = 0; v < variants.size(); v++) {
    printf("    %-10s", Name(variants[v]));
    for (size_t w = 0; w < all[v].compaction_mb.size(); w++) {
      switch (which) {
        case 0:
          printf(" %9.1f", all[v].compaction_mb[w]);
          break;
        case 1:
          printf(" %9llu",
                 static_cast<unsigned long long>(all[v].get_reads[w]));
          break;
        case 2:
          printf(" %9llu",
                 static_cast<unsigned long long>(all[v].lookup_reads[w]));
          break;
      }
    }
    printf("\n");
  }
}

void RunWorkload(const char* figure, const char* name,
                 const MixedRatios& ratios, uint64_t ops, uint64_t windows,
                 const std::string& root) {
  printf("\n%s — %s workload, cumulative I/O\n", figure, name);
  // NoIndex excluded: its LOOKUP full scans dominate runtime and the paper
  // does not plot it in Figures 13-15.
  std::vector<IndexType> variants = {IndexType::kEmbedded, IndexType::kLazy,
                                     IndexType::kComposite};
  std::vector<IoSeries> all;
  for (IndexType type : variants) {
    all.push_back(RunOne(type, ratios, ops, windows,
                         root + "/" + name + "_" + Name(type)));
  }
  const uint64_t window = ops / windows;
  PrintSeries("cumulative compaction I/O (MB, primary+index)", variants, all,
              window, nullptr, 0);
  PrintSeries("cumulative GET block reads", variants, all, window, nullptr,
              1);
  PrintSeries("cumulative LOOKUP block reads", variants, all, window,
              nullptr, 2);
}

void Run(const Flags& flags) {
  const uint64_t ops = flags.GetInt("ops", 60000);
  const uint64_t windows = flags.GetInt("windows", 10);
  const std::string which = flags.GetString("workload", "all");
  const std::string root = ScratchRoot();

  PrintHeader("Figures 13-15 — Mixed workloads, cumulative disk I/O");
  printf("ops=%" PRIu64 ", windows=%" PRIu64 ", index on UserID only\n", ops,
         windows);

  if (which == "all" || which == "write") {
    RunWorkload("Figure 13", "write-heavy", MixedRatios::WriteHeavy(), ops,
                windows, root);
  }
  if (which == "all" || which == "read") {
    RunWorkload("Figure 14", "read-heavy", MixedRatios::ReadHeavy(), ops,
                windows, root);
  }
  if (which == "all" || which == "update") {
    RunWorkload("Figure 15", "update-heavy", MixedRatios::UpdateHeavy(), ops,
                windows, root);
  }

  printf("\nExpected shapes (paper): GET reads identical across variants;\n"
         "LOOKUP reads lowest for Lazy (small top-K, level-bounded scan);\n"
         "compaction I/O highest for Lazy under updates, and Embedded adds\n"
         "no index-table compaction at all.\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
