// Tables 3 & 5 — the paper's worst-case disk-access cost models, checked
// against measured block-read counters:
//
//   Table 3 (Embedded):  LOOKUP <= (K + e) + fp * b * (L+1)/9   block reads
//   Table 5 (Stand-alone, LOOKUP):
//     Eager:      K' + 1    (one index read + one GET per match)
//     Lazy:       K' + L    (up to one fragment read per level + GETs)
//     Composite:  K  + L    (prefix scan touches each level once + GETs)
//   Table 5 (WAMF): Eager ~ PL_S * 22(L-1)  >>  Lazy ~ Composite ~ 22(L-1)
//
// The bench builds a static store per variant, runs LOOKUPs, and prints the
// measured mean/max block reads next to the model bound, plus the measured
// write-amplification of each index table.
//
// Usage: bench_table3_5_cost_model [--n=40000] [--queries=100] [--k=10]

#include <unistd.h>

#include <cmath>

#include "core/standalone_index.h"
#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

int CountLevels(DBImpl* db) {
  int levels = 0;
  for (int l = 0; l < 7; l++) {
    std::string v;
    if (db->GetProperty("leveldbpp.num-files-at-level" + std::to_string(l),
                        &v) &&
        std::stoi(v) > 0) {
      levels = l + 1;
    }
  }
  return levels;
}

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 40000);
  const uint64_t queries = flags.GetInt("queries", 100);
  const size_t k = flags.GetInt("k", 10);
  const std::string root = ScratchRoot();

  PrintHeader("Tables 3 & 5 — worst-case I/O cost models vs measurement");
  printf("n=%" PRIu64 " tweets, K=%zu, %" PRIu64
         " LOOKUP(UserID) queries per variant\n",
         n, k, queries);

  printf("\n  %-10s %7s %7s %9s %9s %9s  %s\n", "variant", "L(idx)",
         "L(prim)", "mean I/O", "max I/O", "model", "model formula");

  for (IndexType type : AllVariants()) {
    VariantConfig config;
    config.type = type;
    config.attributes = {"UserID"};
    auto db = OpenVariant(config, root + "/" + Name(type));
    WorkloadGenerator gen(TweetGeneratorOptions{}, 41);
    std::vector<QueryResult> scratch;
    for (uint64_t i = 0; i < n; i++) {
      CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
    }
    CheckOk(db->CompactAll(), "compact");

    const int primary_levels = CountLevels(db->primary());
    SecondaryIndex* index = db->index("UserID");
    int index_levels = 0;
    uint64_t index_write_bytes = 0;
    StandAloneIndex* standalone = dynamic_cast<StandAloneIndex*>(index);
    if (standalone != nullptr) {
      index_levels = CountLevels(standalone->index_db());
      index_write_bytes =
          standalone->index_statistics()->Get(kCompactionBytesWritten);
    }

    // Measured LOOKUP block reads (primary + index tables).
    Histogram io_hist;
    for (uint64_t q = 0; q < queries; q++) {
      Operation op = gen.NextUserLookup(k);
      uint64_t before = db->TotalTicker(kBlockRead);
      CheckOk(Apply(db.get(), op, &scratch), "lookup");
      io_hist.Add(
          static_cast<double>(db->TotalTicker(kBlockRead) - before));
    }

    double model = 0;
    std::string formula;
    switch (type) {
      case IndexType::kNoIndex: {
        // Full scan: every data block.
        uint64_t blocks = db->PrimarySizeBytes() / 4096;
        model = static_cast<double>(blocks);
        formula = "b (all blocks)";
        break;
      }
      case IndexType::kEmbedded: {
        // (K + e) + fp * b * (L+1)/9 ; fp for 20 bits/key.
        double fp = std::pow(0.6185, 20.0);
        uint64_t blocks = db->PrimarySizeBytes() / 4096;
        model = (k + 1) + fp * blocks;
        formula = "(K+e) + fp*b*(L+1)/9";
        break;
      }
      case IndexType::kEager:
        model = k + 1;
        formula = "K' + 1";
        break;
      case IndexType::kLazy:
        model = k + index_levels;
        formula = "K' + L";
        break;
      case IndexType::kComposite:
        model = k + index_levels;
        formula = "K + L";
        break;
    }

    printf("  %-10s %7d %7d %9.1f %9.0f %9.1f  %s\n", Name(type),
           index_levels, primary_levels, io_hist.Average(), io_hist.Max(),
           model, formula.c_str());

    if (standalone != nullptr) {
      double logical_mb = 0;
      // Approximate logical index size = final table size.
      logical_mb = standalone->IndexSizeBytes() / 1048576.0;
      double written_mb = index_write_bytes / 1048576.0;
      printf("             index WAMF: wrote %.1f MB for a %.1f MB table "
             "(amplification %.1fx)\n",
             written_mb, logical_mb,
             logical_mb > 0 ? written_mb / logical_mb : 0.0);
    }
  }

  printf("\nReading: measured mean should fall at or below the model bound "
         "(the model\nis worst-case); Eager's WAMF should dwarf Lazy's and "
         "Composite's (Table 5).\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
