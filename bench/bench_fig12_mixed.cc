// Figure 12 — overall mean time per operation under Mixed workloads
// (continuous arrivals interleaved with queries; only UserID is indexed
// and queried, like the paper):
//   12a: write-heavy  (80% PUT / 15% GET /  5% LOOKUP)
//   12b: read-heavy   (20% PUT / 70% GET / 10% LOOKUP)
//   12c: update-heavy (40% PUT / 40% update / 15% GET / 5% LOOKUP)
//
// Eager is excluded (paper: "we did not consider Eager Index as it is shown
// to be unusable"); pass --include-eager to add it anyway.
//
// Usage: bench_fig12_mixed [--ops=60000] [--windows=10] [--topk=10]

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void RunWorkload(const char* name, const MixedRatios& ratios, uint64_t ops,
                 uint64_t windows, size_t topk, bool include_eager,
                 bool include_noindex, const std::string& root) {
  printf("\n--- %s: mean time per op (us) per window ---\n", name);
  const uint64_t window = ops / windows;

  // NoIndex is off by default: its LOOKUPs are full scans that dwarf every
  // other line (pass --include-noindex to add it).
  std::vector<IndexType> variants = {IndexType::kEmbedded, IndexType::kLazy,
                                     IndexType::kComposite};
  if (include_noindex) variants.insert(variants.begin(), IndexType::kNoIndex);
  if (include_eager) variants.push_back(IndexType::kEager);

  printf("  %-10s", "window");
  for (uint64_t w = 1; w <= windows; w++) printf(" %9" PRIu64, w * window);
  printf("\n");

  for (IndexType type : variants) {
    VariantConfig config;
    config.type = type;
    config.attributes = {"UserID"};
    auto db = OpenVariant(
        config, root + "/" + name + "_" + Name(type));
    WorkloadGenerator gen(TweetGeneratorOptions{}, 23);
    std::vector<QueryResult> scratch;

    printf("  %-10s", Name(type));
    for (uint64_t w = 0; w < windows; w++) {
      Timer timer;
      for (uint64_t i = 0; i < window; i++) {
        CheckOk(Apply(db.get(), gen.NextMixed(ratios, topk), &scratch),
                "mixed op");
      }
      printf(" %9.2f", static_cast<double>(timer.ElapsedMicros()) / window);
      fflush(stdout);
    }
    printf("\n");
  }
}

void Run(const Flags& flags) {
  const uint64_t ops = flags.GetInt("ops", 60000);
  const uint64_t windows = flags.GetInt("windows", 10);
  const size_t topk = flags.GetInt("topk", 10);
  const bool include_eager = flags.GetBool("include-eager", false);
  const bool include_noindex = flags.GetBool("include-noindex", false);
  const std::string root = ScratchRoot();

  PrintHeader("Figure 12 — Mixed workloads, overall mean time per op");
  printf("ops=%" PRIu64 ", windows=%" PRIu64 ", LOOKUP top-K=%zu, index on "
         "UserID only\n",
         ops, windows, topk);

  RunWorkload("write-heavy", MixedRatios::WriteHeavy(), ops, windows, topk,
              include_eager, include_noindex, root);
  RunWorkload("read-heavy", MixedRatios::ReadHeavy(), ops, windows, topk,
              include_eager, include_noindex, root);
  RunWorkload("update-heavy", MixedRatios::UpdateHeavy(), ops, windows, topk,
              include_eager, include_noindex, root);

  printf("\nExpected shapes (paper): Composite best overall in every mix; "
         "Embedded\nworst on read-heavy (its LOOKUPs scan in-memory filters "
         "across the store);\nLazy slips below Composite under update-heavy "
         "(JSON merge costs in compaction).\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
