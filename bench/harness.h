// Shared bench harness: variant construction, scratch directories, timing,
// table printing, and tiny CLI-flag parsing. Each bench_*.cc binary
// regenerates one of the paper's tables/figures (see DESIGN.md).
//
// Absolute numbers differ from the paper (different hardware, scaled-down
// dataset); the harness therefore reports BOTH wall time and counted disk
// I/O so the hardware-independent shapes can be compared directly.

#ifndef LEVELDBPP_BENCH_HARNESS_H_
#define LEVELDBPP_BENCH_HARNESS_H_

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/secondary_db.h"
#include "env/env.h"
#include "util/histogram.h"
#include "workload/workload.h"

namespace leveldbpp {
namespace bench {

// ---- CLI flags: --name=value ----

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; i++) {
      const char* arg = argv[i];
      if (strncmp(arg, "--", 2) != 0) continue;
      const char* eq = strchr(arg, '=');
      if (eq != nullptr) {
        values_[std::string(arg + 2, eq - arg - 2)] = eq + 1;
      } else {
        values_[arg + 2] = "1";
      }
    }
  }

  uint64_t GetInt(const std::string& name, uint64_t def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : strtoull(it->second.c_str(), nullptr, 10);
  }

  std::string GetString(const std::string& name,
                        const std::string& def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  bool GetBool(const std::string& name, bool def) const {
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

// ---- Scratch directories ----

/// Recursively destroy a directory tree (bounded depth; bench scratch trees
/// are root/<variant>/<table>/<files>).
inline void DestroyTree(const std::string& path, int depth = 0) {
  Env* env = Env::Posix();
  if (depth > 6) return;  // Safety bound
  std::vector<std::string> children;
  if (env->GetChildren(path, &children).ok()) {
    for (const std::string& child : children) {
      std::string full = path + "/" + child;
      if (!env->RemoveFile(full).ok()) {
        DestroyTree(full, depth + 1);
      }
    }
  }
  env->RemoveDir(path);
}

namespace internal {
inline std::string& ScratchRootStorage() {
  static std::string root;
  return root;
}
inline void CleanupScratch() {
  if (!internal::ScratchRootStorage().empty()) {
    DestroyTree(internal::ScratchRootStorage());
  }
}
}  // namespace internal

/// Per-process scratch directory, removed automatically at process exit.
inline std::string ScratchRoot() {
  std::string& root = internal::ScratchRootStorage();
  if (root.empty()) {
    const char* tmp = getenv("TMPDIR");
    root = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
    root += "/leveldbpp_bench_" + std::to_string(getpid());
    Env::Posix()->CreateDir(root);
    atexit(&internal::CleanupScratch);
  }
  return root;
}

// ---- Variants ----

inline std::vector<IndexType> AllVariants() {
  return {IndexType::kNoIndex, IndexType::kEmbedded, IndexType::kLazy,
          IndexType::kEager, IndexType::kComposite};
}

inline std::vector<IndexType> VariantsWithoutEager() {
  // The paper drops Eager from later experiments after showing it is
  // "unusable for high write amplification".
  return {IndexType::kNoIndex, IndexType::kEmbedded, IndexType::kLazy,
          IndexType::kComposite};
}

struct VariantConfig {
  IndexType type;
  std::vector<std::string> attributes = {"UserID", "CreationTime"};
  // Scaled-down engine geometry: small buffers develop 4+ levels on
  // laptop-size datasets, preserving the paper's LSM shape.
  size_t write_buffer_size = 1 << 20;
  size_t max_file_size = 512 << 10;
  uint64_t max_bytes_for_level_base = 4 << 20;
  int embedded_bits_per_key = 20;
  CompressionType compression = kSimpleLZCompression;
  // 0 = the paper's sequential read path; > 1 fans candidate resolution
  // out over the shared pool.
  int read_parallelism = 0;
  // Build REMIX-style sorted views at quiescent points; range iterators
  // then stream the pre-merged runs instead of heap-merging per Next().
  bool sorted_views = false;
  // Override the Env (nullptr = Env::Posix()); benches use this to inject
  // storage latency.
  Env* env = nullptr;
};

inline std::unique_ptr<SecondaryDB> OpenVariant(const VariantConfig& config,
                                                const std::string& path) {
  SecondaryDBOptions options;
  options.base.env = config.env != nullptr ? config.env : Env::Posix();
  options.base.write_buffer_size = config.write_buffer_size;
  options.base.max_file_size = config.max_file_size;
  options.base.max_bytes_for_level_base = config.max_bytes_for_level_base;
  options.base.compression = config.compression;
  options.base.read_parallelism = config.read_parallelism;
  options.base.sorted_views = config.sorted_views;
  options.index_type = config.type;
  options.indexed_attributes = config.attributes;
  options.embedded_bloom_bits_per_key = config.embedded_bits_per_key;
  std::unique_ptr<SecondaryDB> db;
  Status s = SecondaryDB::Open(options, path, &db);
  if (!s.ok()) {
    fprintf(stderr, "FATAL: open %s: %s\n", path.c_str(),
            s.ToString().c_str());
    exit(1);
  }
  return db;
}

// ---- Operation application ----

inline Status Apply(SecondaryDB* db, const Operation& op,
                    std::vector<QueryResult>* scratch) {
  switch (op.type) {
    case OpType::kPut:
      return db->Put(op.key, op.document);
    case OpType::kDelete:
      return db->Delete(op.key);
    case OpType::kGet: {
      std::string value;
      Status s = db->Get(op.key, &value);
      return s.IsNotFound() ? Status::OK() : s;
    }
    case OpType::kLookup:
      return db->Lookup(op.attribute, op.lo, op.k, scratch);
    case OpType::kRangeLookup:
      return db->RangeLookup(op.attribute, op.lo, op.hi, op.k, scratch);
  }
  return Status::OK();
}

inline void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "FATAL: %s: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

// ---- Simulated-device Env ----

/// Injects a blocking sleep into Sync() of table (.ldb) files only — the
/// device-commit latency a flush or compaction output pays on real storage.
/// WAL (.log) appends/syncs are untouched, so the foreground group-commit
/// path is unaffected; what changes is how long the background thread is
/// *occupied* per flush — exactly the latency the immutable-memtable queue
/// hides (bench_concurrent_put) and the overload sweep saturates against
/// (bench_serve --mode=overload). On a page-cached scratch directory a
/// table sync is ~free, so with latency 0 this wrapper is a pass-through.
class TableLatencyEnv : public Env {
 public:
  TableLatencyEnv(Env* base, uint32_t sync_latency_us)
      : base_(base), latency_us_(sync_latency_us) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::unique_ptr<WritableFile> file;
    Status s = base_->NewWritableFile(fname, &file);
    if (s.ok() && latency_us_ > 0 && IsTable(fname)) {
      result->reset(new SlowSyncFile(std::move(file), latency_us_));
    } else if (s.ok()) {
      *result = std::move(file);
    }
    return s;
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status SyncDir(const std::string& dirname) override {
    return base_->SyncDir(dirname);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void Schedule(void (*function)(void*), void* arg) override {
    base_->Schedule(function, arg);
  }
  void StartThread(void (*function)(void*), void* arg) override {
    base_->StartThread(function, arg);
  }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  static bool IsTable(const std::string& fname) {
    return fname.size() > 4 &&
           fname.compare(fname.size() - 4, 4, ".ldb") == 0;
  }

  class SlowSyncFile : public WritableFile {
   public:
    SlowSyncFile(std::unique_ptr<WritableFile> base, uint32_t latency_us)
        : base_(std::move(base)), latency_us_(latency_us) {}
    Status Append(const Slice& data) override { return base_->Append(data); }
    Status Close() override { return base_->Close(); }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      Env::Posix()->SleepForMicroseconds(static_cast<int>(latency_us_));
      return base_->Sync();
    }

   private:
    std::unique_ptr<WritableFile> base_;
    uint32_t latency_us_;
  };

  Env* base_;
  uint32_t latency_us_;
};

// ---- Timing ----

class Timer {
 public:
  Timer() : start_(Env::Posix()->NowMicros()) {}
  uint64_t ElapsedMicros() const { return Env::Posix()->NowMicros() - start_; }
  void Reset() { start_ = Env::Posix()->NowMicros(); }

 private:
  uint64_t start_;
};

// ---- Printing ----

inline void PrintHeader(const char* title) {
  printf("\n================================================================\n");
  printf("%s\n", title);
  printf("================================================================\n");
}

inline void PrintBoxPlotRow(const char* variant, const Histogram& h) {
  Histogram::BoxPlot bp = h.GetBoxPlot();
  printf("  %-10s  n=%-6llu  whiskers=[%10.1f .. %10.1f]  "
         "box=[%10.1f  %10.1f  %10.1f]  (us)\n",
         variant, static_cast<unsigned long long>(h.Count()), bp.lo_whisker,
         bp.hi_whisker, bp.q1, bp.median, bp.q3);
}

inline const char* Name(IndexType t) { return IndexTypeName(t); }

// ---- JSON emission ----

/// Builds one machine-readable JSON object and prints it as a single line;
/// benches emit one per measurement so results pipe straight into jq.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) { Str("bench", bench); }

  JsonLine& Str(const std::string& key, const std::string& value) {
    Key(key);
    out_.push_back('"');
    for (char c : value) {
      if (c == '"' || c == '\\') out_.push_back('\\');
      out_.push_back(c);
    }
    out_.push_back('"');
    return *this;
  }

  JsonLine& Int(const std::string& key, uint64_t value) {
    Key(key);
    out_ += std::to_string(value);
    return *this;
  }

  JsonLine& Double(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", value);
    Key(key);
    out_ += buf;
    return *this;
  }

  JsonLine& Bool(const std::string& key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    return *this;
  }

  void Emit() {
    printf("{%s}\n", out_.c_str());
    fflush(stdout);
  }

 private:
  void Key(const std::string& key) {
    if (!out_.empty()) out_.push_back(',');
    out_.push_back('"');
    out_ += key;
    out_ += "\":";
  }

  std::string out_;
};

}  // namespace bench
}  // namespace leveldbpp

#endif  // LEVELDBPP_BENCH_HARNESS_H_
