// Figure 10 — query latency on the non-time-correlated UserID index
// (Static workload, box-and-whisker quartiles like the paper):
//   10a: LOOKUP(UserID) for top-K in {5, 50, no-limit},
//   10b: RANGELOOKUP(UserID) at low selectivity (a few users) x top-K,
//   10c: RANGELOOKUP(UserID) at higher selectivity x top-K.
//
// Eager is included only with --include-eager (the paper drops it here
// after Figure 9 shows it is unusable to build at scale).
//
// Usage: bench_fig10_userid [--n=60000] [--queries=200] [--include-eager]

#include <unistd.h>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 60000);
  const uint64_t queries = flags.GetInt("queries", 200);
  const bool include_eager = flags.GetBool("include-eager", false);
  const std::string root = ScratchRoot();

  PrintHeader("Figure 10 — UserID (non-time-correlated) query latency");
  printf("n=%" PRIu64 " tweets, %" PRIu64 " queries per cell\n", n, queries);

  std::vector<IndexType> variants = VariantsWithoutEager();
  if (include_eager) variants.push_back(IndexType::kEager);

  // Build each variant once (Static: all inserts, then CompactAll).
  std::vector<std::unique_ptr<SecondaryDB>> dbs;
  for (IndexType type : variants) {
    printf("[build] %s...\n", Name(type));
    VariantConfig config;
    config.type = type;
    auto db = OpenVariant(config, root + "/" + Name(type));
    WorkloadGenerator gen(TweetGeneratorOptions{}, 11);
    std::vector<QueryResult> scratch;
    for (uint64_t i = 0; i < n; i++) {
      CheckOk(Apply(db.get(), gen.NextPut(), &scratch), "put");
    }
    // NOTE: no forced full compaction — the paper's Static workload inserts
    // and then queries the naturally-settled LSM, which is what leaves Lazy
    // posting fragments distributed across levels (the source of its
    // small-top-K advantage).
    dbs.push_back(std::move(db));
  }

  const std::vector<size_t> topks = {5, 50, 0};
  auto TopkName = [](size_t k) {
    return k == 0 ? std::string("NoLimit") : "K=" + std::to_string(k);
  };

  printf("\nFig 10a — LOOKUP(UserID) latency\n");
  for (size_t k : topks) {
    printf(" top-%s\n", TopkName(k).c_str());
    for (size_t v = 0; v < variants.size(); v++) {
      WorkloadGenerator qgen(TweetGeneratorOptions{}, 11);
      for (uint64_t i = 0; i < n; i++) qgen.NextPut();  // Prime sampler
      Histogram hist;
      std::vector<QueryResult> scratch;
      for (uint64_t q = 0; q < queries; q++) {
        Operation op = qgen.NextUserLookup(k);
        Timer t;
        CheckOk(Apply(dbs[v].get(), op, &scratch), "lookup");
        hist.Add(static_cast<double>(t.ElapsedMicros()));
      }
      PrintBoxPlotRow(Name(variants[v]), hist);
    }
  }

  for (uint64_t selectivity : {10ull, 100ull}) {
    printf("\nFig 10%c — RANGELOOKUP(UserID) latency, selectivity = %" PRIu64
           " users\n",
           selectivity == 10 ? 'b' : 'c', selectivity);
    for (size_t k : topks) {
      printf(" top-%s\n", TopkName(k).c_str());
      for (size_t v = 0; v < variants.size(); v++) {
        WorkloadGenerator qgen(TweetGeneratorOptions{}, 11);
        for (uint64_t i = 0; i < n; i++) qgen.NextPut();
        Histogram hist;
        std::vector<QueryResult> scratch;
        // Range scans cost more; cap the per-cell query count.
        uint64_t nq = std::max<uint64_t>(queries / 4, 10);
        for (uint64_t q = 0; q < nq; q++) {
          Operation op = qgen.NextUserRangeLookup(selectivity, k);
          Timer t;
          CheckOk(Apply(dbs[v].get(), op, &scratch), "rangelookup");
          hist.Add(static_cast<double>(t.ElapsedMicros()));
        }
        PrintBoxPlotRow(Name(variants[v]), hist);
      }
    }
  }

  printf("\nExpected shapes (paper): Lazy best for small top-K; Composite "
         "best for\nno-limit; Embedded trails the stand-alone indexes on "
         "this non-time-correlated\nattribute (zone maps prune little; "
         "RANGELOOKUP ~= NoIndex).\n");
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
