// Range-scan engine comparison: heap-merge iterators vs REMIX-style sorted
// views, swept over scan selectivity for every index variant.
//
// Both sides scan the PRIMARY table through DB::NewIterator over identical
// data and identical LSM shapes (the put stream and engine geometry are
// deterministic); the only difference is Options::sorted_views. The
// heap-merge path pays a log(runs) heap reshuffle on every Next(); the
// sorted view pays one binary search at Seek() and then streams runs
// sequentially through precomputed cursor offsets, so its advantage grows
// with the number of keys each scan touches.
//
// Emits one JSON line per (variant, engine, selectivity) cell:
//   {"bench":"range_scan","variant":"Lazy","engine":"sorted_view",
//    "permille":100,"scans":...,"keys_per_scan":...,"us_per_scan":...,
//    "keys_per_sec":...,"sv_builds":...,"sv_used":...,"sv_fallbacks":...}
//
// Usage: bench_range_scan [--n=40000] [--reps=40] [--pad=128]

#include <cinttypes>
#include <cstdio>

#include "harness.h"

namespace leveldbpp {
namespace bench {
namespace {

std::string ScanKey(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

// Incompressible padding so on-disk sizes track document sizes and the
// deterministic geometry below develops multiple populated levels (sorted
// views only build with >= 2 sorted runs below L0).
std::string Doc(uint64_t i, size_t pad) {
  std::string noise(pad, ' ');
  uint64_t x = (i + 1) * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t j = 0; j < pad; j++) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    noise[j] = static_cast<char>('A' + ((x >> 33) % 26));
  }
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%012llu",
                static_cast<unsigned long long>(1000000 + i));
  return "{\"CreationTime\":\"" + std::string(ts) + "\",\"Pad\":\"" + noise +
         "\",\"UserID\":\"user" + std::to_string(i % 101) + "\"}";
}

struct Cell {
  uint64_t scans = 0;
  uint64_t keys = 0;
  uint64_t micros = 0;
};

void Run(const Flags& flags) {
  const uint64_t n = flags.GetInt("n", 40000);
  const uint64_t reps = flags.GetInt("reps", 40);
  const size_t pad = flags.GetInt("pad", 128);
  // Scan width as a fraction of the keyspace, in per-mille.
  const std::vector<uint64_t> permille = {1, 10, 100, 500, 1000};
  const std::string root = ScratchRoot();

  std::fprintf(stderr,
               "range_scan: n=%" PRIu64 " docs, pad=%zu, reps=%" PRIu64
               " per selectivity point\n",
               n, pad, reps);

  for (IndexType type : AllVariants()) {
    for (bool sorted : {false, true}) {
      const char* engine = sorted ? "sorted_view" : "heap_merge";
      VariantConfig config;
      config.type = type;
      if (type == IndexType::kNoIndex) config.attributes = {};
      // Small geometry so ~n docs settle into 2-3 populated levels below
      // L0 at quiescence; incompressible docs keep the shape honest.
      config.write_buffer_size = 256 << 10;
      config.max_file_size = 128 << 10;
      config.max_bytes_for_level_base = 512 << 10;
      config.compression = kNoCompression;
      config.sorted_views = sorted;
      const std::string path =
          root + "/" + Name(type) + (sorted ? "_sv" : "_hm");
      auto db = OpenVariant(config, path);
      for (uint64_t i = 0; i < n; i++) {
        CheckOk(db->Put(ScanKey(i), Doc(i, pad)), "put");
      }

      std::vector<Cell> cells(permille.size());
      for (uint64_t rep = 0; rep < reps; rep++) {
        for (size_t s = 0; s < permille.size(); s++) {
          const uint64_t width = n * permille[s] / 1000;
          if (width == 0) continue;
          // Rotate the window start so repeats touch different blocks.
          const uint64_t lo = (rep * 2654435761ull) % (n - width + 1);
          const std::string limit = ScanKey(lo + width);
          Timer timer;
          std::unique_ptr<Iterator> it(
              db->primary()->NewIterator(ReadOptions()));
          uint64_t keys = 0;
          for (it->Seek(ScanKey(lo));
               it->Valid() && it->key().ToString() < limit; it->Next()) {
            keys++;
          }
          CheckOk(it->status(), "scan");
          cells[s].micros += timer.ElapsedMicros();
          cells[s].scans++;
          cells[s].keys += keys;
        }
      }

      const uint64_t builds = db->TotalTicker(kSortedViewBuilds);
      const uint64_t used = db->TotalTicker(kSortedViewUsed);
      const uint64_t fallbacks = db->TotalTicker(kSortedViewFallbacks);
      if (sorted && used == 0) {
        fprintf(stderr,
                "WARNING: %s sorted_view config never used a view "
                "(builds=%" PRIu64 " fallbacks=%" PRIu64 ")\n",
                Name(type), builds, fallbacks);
      }
      for (size_t s = 0; s < permille.size(); s++) {
        const Cell& c = cells[s];
        if (c.scans == 0) continue;
        const double us_per_scan =
            static_cast<double>(c.micros) / c.scans;
        const double keys_per_scan =
            static_cast<double>(c.keys) / c.scans;
        const double keys_per_sec =
            c.micros == 0 ? 0.0
                          : static_cast<double>(c.keys) * 1e6 / c.micros;
        std::fprintf(stderr,
                     "  %-10s %-11s %4" PRIu64 "‰  %9.1f us/scan  "
                     "%8.0f keys  %10.0f keys/s\n",
                     Name(type), engine, permille[s], us_per_scan,
                     keys_per_scan, keys_per_sec);
        JsonLine line("range_scan");
        line.Str("variant", Name(type))
            .Str("engine", engine)
            .Int("permille", permille[s])
            .Int("n", n)
            .Int("scans", c.scans)
            .Double("keys_per_scan", keys_per_scan)
            .Double("us_per_scan", us_per_scan)
            .Double("keys_per_sec", keys_per_sec)
            .Int("sv_builds", builds)
            .Int("sv_used", used)
            .Int("sv_fallbacks", fallbacks);
        line.Emit();
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  leveldbpp::bench::Flags flags(argc, argv);
  leveldbpp::bench::Run(flags);
  return 0;
}
