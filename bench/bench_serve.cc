// Sharded serving throughput: saturating mixed PUT/LOOKUP against a
// ShardedDB, across shard counts and client threads, in three modes:
//
//   --mode=server     threads are real protocol clients over loopback TCP
//                     (one connection each) against a Server — the full
//                     serving stack, framing and syscalls included.
//   --mode=direct     threads call ShardedDB in-process — isolates the
//                     shard routing / fan-out layer from the network.
//   --mode=unsharded  threads share ONE SecondaryDB behind one mutex —
//                     the baseline the sharded layer exists to beat
//                     (SecondaryDB's index maintenance is single-writer, so
//                     an unsharded server must serialize writers).
//   --mode=overload   offered-load sweep past saturation: write-heavy
//                     no-retry clients against small-memtable shards with
//                     shedding on, stepping the thread count up. Measures
//                     what an overload-proof server should show — goodput
//                     holds (or degrades gracefully) while the excess is
//                     answered with RETRY_LATER instead of queueing, and
//                     acknowledged-write p99 stays bounded.
//
// Not one of the paper's figures: the paper measures a single-threaded
// embedded engine; this bench quantifies the serving layer built on top of
// it. On a single-core container expect NO scaling with shards — the point
// of recording shard counts 1/2/4 in the trajectory is the shape on
// multi-core hardware, and that N=1 costs nothing over unsharded.
//
// Output: one JSON object per line, e.g.
//   {"bench":"serve","mode":"server","variant":"Lazy","shards":2,...}

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "harness.h"

#include "serve/client.h"
#include "serve/server.h"
#include "serve/sharded_db.h"

namespace leveldbpp {
namespace bench {
namespace {

struct WorkerStats {
  Histogram put_us;
  Histogram lookup_us;
  uint64_t errors = 0;
  uint64_t acked = 0;  // Overload mode: writes acknowledged
  uint64_t shed = 0;   // Overload mode: RETRY_LATER answers
};

std::string MakeDoc(uint64_t user, uint64_t t) {
  std::string doc = "{\"UserID\":\"user";
  doc += std::to_string(user);
  doc += "\",\"CreationTime\":\"";
  doc += std::to_string(10000000 + t);
  doc += "\",\"Body\":\"padding padding padding padding padding\"}";
  return doc;
}

SecondaryDBOptions MakeShardOptions(IndexType type) {
  VariantConfig config;
  config.type = type;
  SecondaryDBOptions options;
  options.base.env = Env::Posix();
  options.base.write_buffer_size = config.write_buffer_size;
  options.base.max_file_size = config.max_file_size;
  options.base.max_bytes_for_level_base = config.max_bytes_for_level_base;
  options.base.compression = config.compression;
  options.base.background_compaction = true;  // A server never flushes inline
  options.index_type = type;
  options.indexed_attributes = config.attributes;
  options.embedded_bloom_bits_per_key = config.embedded_bits_per_key;
  return options;
}

/// One worker's operation stream: deterministic mixed PUT/LOOKUP. `put` and
/// `lookup` abstract over client/direct/unsharded transports.
template <typename PutFn, typename LookupFn>
void RunWorker(int tid, uint64_t ops, uint64_t lookup_frac, uint64_t users,
               WorkerStats* stats, const PutFn& put, const LookupFn& lookup) {
  Env* env = Env::Posix();
  std::vector<QueryResult> results;
  for (uint64_t i = 0; i < ops; i++) {
    // Spread lookups evenly through the stream, not in a burst at the end.
    const bool is_lookup = (i % 100) < lookup_frac;
    const uint64_t user = (i * 2654435761u + tid * 40503u) % users;
    const uint64_t start = env->NowMicros();
    Status s;
    if (is_lookup) {
      s = lookup("user" + std::to_string(user), &results);
      stats->lookup_us.Add(static_cast<double>(env->NowMicros() - start));
    } else {
      const std::string key =
          "t" + std::to_string(tid) + "-k" + std::to_string(i);
      s = put(key, MakeDoc(user, i));
      stats->put_us.Add(static_cast<double>(env->NowMicros() - start));
    }
    if (!s.ok()) stats->errors++;
  }
}

struct RunResult {
  uint64_t elapsed_us = 0;
  uint64_t errors = 0;
  Histogram put_us;
  Histogram lookup_us;
};

void Emit(const std::string& mode, IndexType type, int shards, int threads,
          uint64_t total_ops, uint64_t lookup_frac, const RunResult& r) {
  JsonLine line("serve");
  line.Str("mode", mode)
      .Str("variant", Name(type))
      .Int("shards", static_cast<uint64_t>(shards))
      .Int("threads", static_cast<uint64_t>(threads))
      .Int("ops", total_ops)
      .Int("lookup_frac_pct", lookup_frac)
      .Int("elapsed_us", r.elapsed_us)
      .Double("kops_per_sec",
              r.elapsed_us == 0
                  ? 0.0
                  : 1000.0 * static_cast<double>(total_ops) /
                        static_cast<double>(r.elapsed_us))
      .Int("errors", r.errors);
  if (r.put_us.Count() > 0) {
    line.Double("put_p50_us", r.put_us.Median())
        .Double("put_p99_us", r.put_us.Percentile(99));
  }
  if (r.lookup_us.Count() > 0) {
    line.Double("lookup_p50_us", r.lookup_us.Median())
        .Double("lookup_p99_us", r.lookup_us.Percentile(99));
  }
  line.Emit();
}

template <typename MakeWorkerFn>
RunResult RunThreads(int threads, uint64_t ops_per_thread,
                     const MakeWorkerFn& make_worker) {
  std::vector<WorkerStats> stats(threads);
  std::vector<std::thread> workers;
  Timer timer;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back(make_worker(t, &stats[t]));
  }
  for (std::thread& w : workers) w.join();
  RunResult result;
  result.elapsed_us = timer.ElapsedMicros();
  for (const WorkerStats& ws : stats) {
    result.errors += ws.errors;
    result.put_us.Merge(ws.put_us);
    result.lookup_us.Merge(ws.lookup_us);
  }
  (void)ops_per_thread;
  return result;
}

void RunServerMode(IndexType type, int shards, int threads, uint64_t total_ops,
                   uint64_t lookup_frac, uint64_t users) {
  const std::string path = ScratchRoot() + "/serve_server_" +
                           std::string(Name(type)) + "_" +
                           std::to_string(shards);
  ShardedDBOptions options;
  options.shard = MakeShardOptions(type);
  options.num_shards = shards;
  std::unique_ptr<ShardedDB> db;
  CheckOk(ShardedDB::Open(options, path, &db), "open sharded");

  std::unique_ptr<Server> server;
  CheckOk(Server::Start(db.get(), ServerOptions(), &server), "start server");

  const uint64_t per_thread = total_ops / threads;
  const int port = server->port();
  RunResult r = RunThreads(threads, per_thread, [&](int tid,
                                                    WorkerStats* ws) {
    return [tid, per_thread, lookup_frac, users, ws, port]() {
      std::unique_ptr<Client> client;
      CheckOk(Client::Connect("127.0.0.1", port, &client), "connect");
      RunWorker(
          tid, per_thread, lookup_frac, users, ws,
          [&](const std::string& k, const std::string& v) {
            return client->Put(k, v);
          },
          [&](const std::string& v, std::vector<QueryResult>* out) {
            return client->Lookup("UserID", v, 3, out);
          });
    };
  });
  server->Stop();
  Emit("server", type, shards, threads, per_thread * threads, lookup_frac, r);
  db.reset();
  DestroyTree(path);
}

void RunDirectMode(IndexType type, int shards, int threads, uint64_t total_ops,
                   uint64_t lookup_frac, uint64_t users) {
  const std::string path = ScratchRoot() + "/serve_direct_" +
                           std::string(Name(type)) + "_" +
                           std::to_string(shards);
  ShardedDBOptions options;
  options.shard = MakeShardOptions(type);
  options.num_shards = shards;
  std::unique_ptr<ShardedDB> db;
  CheckOk(ShardedDB::Open(options, path, &db), "open sharded");

  const uint64_t per_thread = total_ops / threads;
  RunResult r = RunThreads(threads, per_thread, [&](int tid,
                                                    WorkerStats* ws) {
    return [&, tid, ws]() {
      RunWorker(
          tid, per_thread, lookup_frac, users, ws,
          [&](const std::string& k, const std::string& v) {
            return db->Put(k, v);
          },
          [&](const std::string& v, std::vector<QueryResult>* out) {
            return db->Lookup("UserID", v, 3, out);
          });
    };
  });
  Emit("direct", type, shards, threads, per_thread * threads, lookup_frac, r);
  db.reset();
  DestroyTree(path);
}

// Offered-load sweep: one store + server (small memtables so the stall
// ladder is reachable inside a bench-sized run, shedding on), stepped
// thread counts, pure writes through NO-RETRY clients. Every op is either
// acknowledged (goodput) or answered RETRY_LATER (shed) — a third outcome
// is an error and fails the premise. One JSON line per step.
void RunOverloadMode(IndexType type, int shards, uint64_t ops_per_step,
                     uint64_t users, uint32_t table_sync_latency_us) {
  const std::string path = ScratchRoot() + "/serve_overload_" +
                           std::string(Name(type)) + "_" +
                           std::to_string(shards);
  // Small memtables + a simulated device-commit latency per table Sync
  // (harness TableLatencyEnv): on a page-cached scratch dir a flush is
  // ~free and the ladder never engages, so without the sleep the sweep
  // measures the network, not the overload policy.
  TableLatencyEnv latency_env(Env::Posix(), table_sync_latency_us);
  ShardedDBOptions options;
  options.shard = MakeShardOptions(type);
  options.shard.base.env = &latency_env;
  options.shard.base.write_buffer_size = 64 << 10;
  options.shard.base.max_immutable_memtables = 1;
  options.num_shards = shards;
  std::unique_ptr<ShardedDB> db;
  CheckOk(ShardedDB::Open(options, path, &db), "open sharded");

  std::unique_ptr<Server> server;
  CheckOk(Server::Start(db.get(), ServerOptions(), &server), "start server");
  const int port = server->port();

  for (int threads : {1, 2, 4, 8, 16}) {
    const uint64_t per_thread = ops_per_step / threads;
    RunResult r;
    std::vector<WorkerStats> stats(threads);
    std::vector<std::thread> workers;
    Timer timer;
    for (int t = 0; t < threads; t++) {
      WorkerStats* ws = &stats[t];
      workers.emplace_back([t, per_thread, users, ws, port, threads]() {
        std::unique_ptr<Client> client;
        CheckOk(Client::Connect("127.0.0.1", port, &client), "connect");
        RetryPolicy no_retry;
        no_retry.max_retries = 0;
        client->set_retry_policy(no_retry);
        Env* env = Env::Posix();
        for (uint64_t i = 0; i < per_thread; i++) {
          const uint64_t user = (i * 2654435761u + t * 40503u) % users;
          const std::string key = "ov" + std::to_string(threads) + "-t" +
                                  std::to_string(t) + "-k" + std::to_string(i);
          const uint64_t start = env->NowMicros();
          Status s = client->Put(key, MakeDoc(user, i));
          if (s.ok()) {
            ws->acked++;
            ws->put_us.Add(static_cast<double>(env->NowMicros() - start));
          } else if (s.IsBusy()) {
            ws->shed++;
          } else {
            ws->errors++;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    r.elapsed_us = timer.ElapsedMicros();
    uint64_t acked = 0, shed = 0;
    for (const WorkerStats& ws : stats) {
      acked += ws.acked;
      shed += ws.shed;
      r.errors += ws.errors;
      r.put_us.Merge(ws.put_us);
    }
    const uint64_t offered = per_thread * threads;
    JsonLine line("serve");
    line.Str("mode", "overload")
        .Str("variant", Name(type))
        .Int("shards", static_cast<uint64_t>(shards))
        .Int("threads", static_cast<uint64_t>(threads))
        .Int("offered_ops", offered)
        .Int("acked_ops", acked)
        .Int("shed_ops", shed)
        .Int("errors", r.errors)
        .Int("elapsed_us", r.elapsed_us)
        .Double("goodput_kops_per_sec",
                r.elapsed_us == 0 ? 0.0
                                  : 1000.0 * static_cast<double>(acked) /
                                        static_cast<double>(r.elapsed_us))
        .Int("table_sync_latency_us",
             static_cast<uint64_t>(table_sync_latency_us))
        .Double("shed_rate_pct", offered == 0
                                     ? 0.0
                                     : 100.0 * static_cast<double>(shed) /
                                           static_cast<double>(offered));
    if (r.put_us.Count() > 0) {
      line.Double("put_p50_us", r.put_us.Median())
          .Double("put_p99_us", r.put_us.Percentile(99));
    }
    line.Emit();
  }
  server->Stop();
  db.reset();
  DestroyTree(path);
}

void RunUnshardedMode(IndexType type, int threads, uint64_t total_ops,
                      uint64_t lookup_frac, uint64_t users) {
  const std::string path =
      ScratchRoot() + "/serve_unsharded_" + std::string(Name(type));
  SecondaryDBOptions options = MakeShardOptions(type);
  std::unique_ptr<SecondaryDB> db;
  CheckOk(SecondaryDB::Open(options, path, &db), "open unsharded");

  // SecondaryDB index maintenance is single-writer: an unsharded server
  // must serialize every writer behind one mutex. Reads go lock-free.
  std::mutex write_mu;
  const uint64_t per_thread = total_ops / threads;
  RunResult r = RunThreads(threads, per_thread, [&](int tid,
                                                    WorkerStats* ws) {
    return [&, tid, ws]() {
      RunWorker(
          tid, per_thread, lookup_frac, users, ws,
          [&](const std::string& k, const std::string& v) {
            std::lock_guard<std::mutex> lock(write_mu);
            return db->Put(k, v);
          },
          [&](const std::string& v, std::vector<QueryResult>* out) {
            return db->Lookup("UserID", v, 3, out);
          });
    };
  });
  Emit("unsharded", type, 1, threads, per_thread * threads, lookup_frac, r);
  db.reset();
  DestroyTree(path);
}

std::vector<IndexType> ParseTypes(const std::string& spec) {
  if (spec == "all") return AllVariants();
  std::vector<IndexType> out;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string name = spec.substr(start, comma - start);
    if (name == "noindex") out.push_back(IndexType::kNoIndex);
    else if (name == "embedded") out.push_back(IndexType::kEmbedded);
    else if (name == "lazy") out.push_back(IndexType::kLazy);
    else if (name == "eager") out.push_back(IndexType::kEager);
    else if (name == "composite") out.push_back(IndexType::kComposite);
    else if (!name.empty()) {
      fprintf(stderr, "FATAL: unknown index type: %s\n", name.c_str());
      exit(1);
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  using namespace leveldbpp;
  using namespace leveldbpp::bench;

  Flags flags(argc, argv);
  const int shards = static_cast<int>(flags.GetInt("shards", 2));
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const uint64_t total_ops = flags.GetInt("ops", 20000);
  const uint64_t lookup_frac = flags.GetInt("lookup_frac", 10);  // percent
  const uint64_t users = flags.GetInt("users", 200);
  const std::string mode = flags.GetString("mode", "server");
  const uint32_t table_sync_latency_us = static_cast<uint32_t>(
      flags.GetInt("table_sync_latency_us", mode == "overload" ? 20000 : 0));
  const std::vector<IndexType> types =
      ParseTypes(flags.GetString("types", "all"));

  for (IndexType type : types) {
    if (mode == "server") {
      RunServerMode(type, shards, threads, total_ops, lookup_frac, users);
    } else if (mode == "direct") {
      RunDirectMode(type, shards, threads, total_ops, lookup_frac, users);
    } else if (mode == "unsharded") {
      RunUnshardedMode(type, threads, total_ops, lookup_frac, users);
    } else if (mode == "overload") {
      RunOverloadMode(type, shards, total_ops, users, table_sync_latency_us);
    } else {
      fprintf(stderr, "FATAL: unknown mode: %s\n", mode.c_str());
      return 1;
    }
  }
  return 0;
}
