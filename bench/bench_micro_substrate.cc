// Substrate microbenchmarks (google-benchmark): the primitives every
// experiment rests on — coding, checksums, bloom filters, compression,
// skiplist/memtable, block build/read, posting-list merge.

#include <benchmark/benchmark.h>

#include <memory>

#include "compress/codec.h"
#include "core/posting_list.h"
#include "db/dbformat.h"
#include "db/memtable.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/filter_policy.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

void BM_Varint64Encode(benchmark::State& state) {
  Random64 rnd(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1024; i++) values.push_back(rnd.Next() >> rnd.Uniform(60));
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    for (uint64_t v : values) PutVarint64(&buf, v);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Varint64Encode);

void BM_Varint64Decode(benchmark::State& state) {
  Random64 rnd(1);
  std::string buf;
  for (int i = 0; i < 1024; i++) PutVarint64(&buf, rnd.Next() >> rnd.Uniform(60));
  for (auto _ : state) {
    Slice input(buf);
    uint64_t v;
    while (GetVarint64(&input, &v)) benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Varint64Decode);

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_BloomCreate(benchmark::State& state) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(20));
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 128; i++) keys.push_back("user" + std::to_string(i));
  for (const auto& k : keys) slices.emplace_back(k);
  std::string dst;
  for (auto _ : state) {
    dst.clear();
    policy->CreateFilter(slices.data(), static_cast<int>(slices.size()), &dst);
    benchmark::DoNotOptimize(dst);
  }
  state.SetItemsProcessed(state.iterations() * slices.size());
}
BENCHMARK(BM_BloomCreate);

void BM_BloomProbe(benchmark::State& state) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(20));
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 128; i++) keys.push_back("user" + std::to_string(i));
  for (const auto& k : keys) slices.emplace_back(k);
  std::string filter;
  policy->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                       &filter);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy->KeyMayMatch(Slice(keys[i++ & 127]), Slice(filter)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_SimpleLZCompress(benchmark::State& state) {
  std::string data;
  Random64 rnd(7);
  while (data.size() < 4096) {
    data += "{\"UserID\":\"u" + std::to_string(rnd.Uniform(100)) +
            "\",\"Body\":\"some tweet text here\"}";
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    simplelz::Compress(Slice(data), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SimpleLZCompress);

void BM_SimpleLZUncompress(benchmark::State& state) {
  std::string data;
  Random64 rnd(7);
  while (data.size() < 4096) {
    data += "{\"UserID\":\"u" + std::to_string(rnd.Uniform(100)) +
            "\",\"Body\":\"some tweet text here\"}";
  }
  std::string compressed;
  simplelz::Compress(Slice(data), &compressed);
  std::string out(data.size(), '\0');
  for (auto _ : state) {
    simplelz::Uncompress(Slice(compressed), out.data());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SimpleLZUncompress);

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  uint64_t seq = 1;
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  Random64 rnd(3);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rnd.Next() & 0xFFFFF);
    mem->Add(seq++, kTypeValue, Slice(key), Slice("value"));
    if (mem->ApproximateMemoryUsage() > (16 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableAdd);

void BM_BlockBuildAndSeek(benchmark::State& state) {
  BlockBuilder builder(16);
  std::vector<std::string> keys;
  for (int i = 0; i < 200; i++) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%08d", i * 7);
    keys.push_back(buf);
    builder.Add(Slice(buf), Slice("value-payload-0123456789"));
  }
  Slice contents = builder.Finish();
  BlockContents bc;
  bc.data = contents;
  bc.heap_allocated = false;
  bc.cachable = false;
  Block block(bc);
  int i = 0;
  for (auto _ : state) {
    std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
    it->Seek(Slice(keys[i++ % keys.size()]));
    benchmark::DoNotOptimize(it->Valid());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockBuildAndSeek);

void BM_PostingListMerge(benchmark::State& state) {
  // Merge 4 fragments of 32 entries each — a typical Lazy compaction step.
  std::vector<std::string> serialized(4);
  uint64_t seq = 1000000;
  for (int f = 3; f >= 0; f--) {
    std::vector<PostingEntry> entries;
    for (int i = 0; i < 32; i++) {
      entries.emplace_back("t" + std::to_string(f * 1000 + i), seq--, false);
    }
    PostingList::Serialize(entries, &serialized[f]);
  }
  std::vector<Slice> values;
  for (const auto& s : serialized) values.emplace_back(s);
  std::string out;
  for (auto _ : state) {
    PostingListMerger::Instance()->Merge(Slice("u1"), values, false, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PostingListMerge);

}  // namespace
}  // namespace leveldbpp

BENCHMARK_MAIN();
