// Bulk-load bench: DB::IngestExternalFiles / SecondaryDB::IngestWithIndexes
// vs. the memtable backfill path (Put every document), per index variant.
//
// Not one of the paper's figures — the paper's Static workloads build their
// stores through the write path. This bench quantifies the opt-in ingest
// leg: a pre-sorted load skips the WAL, the memtable, and the whole
// flush-then-recompact cascade, writing each record to disk exactly once at
// the deepest non-overlapping level.
//
// --phase=load (default)    put-backfill vs. ingest wall time per variant
// --phase=maintenance       Put workload under each IndexMaintenance mode
//
// Output: one JSON object per line ("bench":"ingest" / "ingest_maintenance").

#include <memory>
#include <string>
#include <vector>

#include "harness.h"

#include "db/db_impl.h"
#include "env/statistics.h"

namespace leveldbpp {
namespace bench {
namespace {

std::string DocKey(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

std::string Doc(uint64_t i, size_t pad) {
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%012llu",
                static_cast<unsigned long long>(1000000 + i));
  return "{\"CreationTime\":\"" + std::string(ts) + "\",\"Pad\":\"" +
         std::string(pad, 'p') + "\",\"UserID\":\"u" +
         std::to_string(i % 1000) + "\"}";
}

SecondaryDBOptions MakeOptions(IndexType type, Statistics* stats,
                               size_t write_buffer) {
  SecondaryDBOptions options;
  options.base.env = Env::Posix();
  options.base.write_buffer_size = write_buffer;
  options.base.max_file_size = 2 << 20;
  options.base.max_bytes_for_level_base = 10 << 20;
  options.base.statistics = stats;
  options.index_type = type;
  options.indexed_attributes = {"UserID"};
  return options;
}

void EmitLoad(IndexType type, const char* path_kind, uint64_t docs,
              size_t pad, uint64_t micros, Statistics* stats,
              const IngestStats* ingest) {
  JsonLine line("ingest");
  line.Str("variant", Name(type))
      .Str("path", path_kind)
      .Int("docs", docs)
      .Int("doc_pad", pad)
      .Int("micros", micros)
      .Double("kdocs_per_sec", micros > 0 ? (docs / 1000.0) / (micros / 1e6)
                                          : 0)
      .Int("flushes", stats->Get(kFlushCount))
      .Int("compactions", stats->Get(kCompactionCount))
      .Int("compaction_bytes_written", stats->Get(kCompactionBytesWritten))
      .Int("wal_bytes", stats->Get(kWalBytesWritten));
  if (ingest != nullptr) {
    line.Int("ingest_files", ingest->files).Int("ingest_bytes", ingest->bytes);
  }
  line.Emit();
}

void RunLoad(IndexType type, uint64_t docs, size_t pad,
             size_t put_write_buffer) {
  // ---- Memtable backfill: Put every (already sorted) document.
  {
    Statistics stats;
    std::string path = ScratchRoot() + "/ingest_put_" + Name(type);
    DestroyTree(path);
    std::unique_ptr<SecondaryDB> db;
    CheckOk(SecondaryDB::Open(MakeOptions(type, &stats, put_write_buffer),
                              path, &db),
            "open put");
    Timer timer;
    for (uint64_t i = 0; i < docs; i++) {
      CheckOk(db->Put(DocKey(i), Doc(i, pad)), "put");
    }
    CheckOk(db->primary()->WaitForBackgroundWork(), "drain");
    EmitLoad(type, "put", docs, pad, timer.ElapsedMicros(), &stats, nullptr);
    db.reset();
    DestroyTree(path);
  }

  // ---- Bulk load: stream the same feed through IngestWithIndexes.
  {
    Statistics stats;
    std::string path = ScratchRoot() + "/ingest_bulk_" + Name(type);
    DestroyTree(path);
    std::unique_ptr<SecondaryDB> db;
    CheckOk(SecondaryDB::Open(MakeOptions(type, &stats, put_write_buffer),
                              path, &db),
            "open ingest");
    Timer timer;
    uint64_t next = 0;
    IngestStats ingest;
    IngestFeed feed = [&](std::string* key, std::string* value) {
      if (next >= docs) return false;
      *key = DocKey(next);
      *value = Doc(next, pad);
      next++;
      return true;
    };
    CheckOk(db->IngestWithIndexes(feed, &ingest), "ingest");
    EmitLoad(type, "ingest", docs, pad, timer.ElapsedMicros(), &stats,
             &ingest);
    db.reset();
    DestroyTree(path);
  }
}

const char* ModeName(IndexMaintenance m) {
  switch (m) {
    case IndexMaintenance::kSync: return "sync";
    case IndexMaintenance::kDeferredBatch: return "deferred";
    case IndexMaintenance::kTimestampValidated: return "timestamp";
  }
  return "?";
}

void RunMaintenance(IndexType type, uint64_t docs, size_t pad,
                    uint64_t lookup_every) {
  for (IndexMaintenance mode :
       {IndexMaintenance::kSync, IndexMaintenance::kDeferredBatch,
        IndexMaintenance::kTimestampValidated}) {
    Statistics stats;
    std::string path = ScratchRoot() + "/maint_" + Name(type);
    DestroyTree(path);
    SecondaryDBOptions options = MakeOptions(type, &stats, 1 << 20);
    options.index_maintenance = mode;
    std::unique_ptr<SecondaryDB> db;
    CheckOk(SecondaryDB::Open(options, path, &db), "open");

    // Updates included (keys wrap over half the doc count) so the index
    // write path does real delete-old-posting work, and periodic LOOKUPs so
    // the deferred mode pays its query-time drains inside the window.
    std::vector<QueryResult> results;
    uint64_t lookups = 0;
    Timer timer;
    for (uint64_t i = 0; i < docs; i++) {
      CheckOk(db->Put(DocKey(i % (docs / 2 + 1)), Doc(i, pad)), "put");
      if (lookup_every != 0 && (i + 1) % lookup_every == 0) {
        CheckOk(db->Lookup("UserID", "u" + std::to_string(i % 1000), 10,
                           &results),
                "lookup");
        lookups++;
      }
    }
    CheckOk(db->primary()->WaitForBackgroundWork(), "drain");
    const uint64_t micros = timer.ElapsedMicros();

    JsonLine("ingest_maintenance")
        .Str("variant", Name(type))
        .Str("mode", ModeName(mode))
        .Int("docs", docs)
        .Int("lookups", lookups)
        .Int("micros", micros)
        .Double("kdocs_per_sec",
                micros > 0 ? (docs / 1000.0) / (micros / 1e6) : 0)
        .Int("deferred_ops", stats.Get(kIndexDeferredOps))
        .Int("deferred_applies", stats.Get(kIndexDeferredApplies))
        .Int("timestamp_validations", stats.Get(kTimestampValidations))
        .Int("timestamp_rejects", stats.Get(kTimestampRejects))
        .Int("index_write_bytes", db->TotalTicker(kWalBytesWritten) -
                                      stats.Get(kWalBytesWritten))
        .Emit();
    db.reset();
    DestroyTree(path);
  }
}

std::vector<IndexType> ParseTypes(const std::string& spec) {
  std::vector<IndexType> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string name = spec.substr(pos, comma - pos);
    for (IndexType t : AllVariants()) {
      std::string n = Name(t);
      for (char& c : n) c = static_cast<char>(tolower(c));
      if (n == name) out.push_back(t);
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace leveldbpp

int main(int argc, char** argv) {
  using namespace leveldbpp;
  using namespace leveldbpp::bench;

  Flags flags(argc, argv);
  const std::string phase = flags.GetString("phase", "load");
  const uint64_t docs = flags.GetInt("docs", 1000000);
  const size_t pad = flags.GetInt("doc_pad", 64);
  const std::vector<IndexType> types = ParseTypes(
      flags.GetString("types", "noindex,embedded,lazy,eager,composite"));
  if (types.empty()) {
    std::fprintf(stderr,
                 "bad --types spec (want e.g. noindex,embedded,lazy)\n");
    return 1;
  }

  if (phase == "load") {
    // 4MB memtables for the Put baseline: a generous buffer is the best
    // case for backfill (fewer flushes), so the reported ingest speedup is
    // a floor, not an artifact of a starved memtable.
    const size_t put_write_buffer = flags.GetInt("write_buffer", 4 << 20);
    for (IndexType t : types) RunLoad(t, docs, pad, put_write_buffer);
  } else if (phase == "maintenance") {
    const uint64_t lookup_every = flags.GetInt("lookup_every", 5000);
    for (IndexType t : types) {
      if (t == IndexType::kNoIndex || t == IndexType::kEmbedded) continue;
      RunMaintenance(t, docs, pad, lookup_every);
    }
  } else {
    std::fprintf(stderr, "unknown --phase=%s (load|maintenance)\n",
                 phase.c_str());
    return 1;
  }
  return 0;
}
