// leveldbpp_client: command-line client for leveldbpp_server.
//
//   leveldbpp_client [--host=H] [--port=P] [--deadline-ms=N] [--retries=N]
//                    [--allow-degraded] COMMAND [ARGS...]
//
// Commands:
//   ping
//   put KEY JSON              e.g. put k1 '{"UserID":"u1"}'
//   get KEY
//   del KEY
//   lookup ATTR VALUE [K]
//   range ATTR LO HI [K]
//   stats
//   health
//
// --deadline-ms=N    end-to-end budget per operation (propagated to the
//                    server, which abandons work once it expires); 0 = none.
// --retries=N        RETRY_LATER / transport-failure retry budget (default 5;
//                    0 disables retrying).
// --allow-degraded   accept partial LOOKUP/RANGE results when shards are
//                    down; a degraded answer is flagged on stderr.
//
// LOOKUP/RANGELOOKUP print one line per result: <seq> <key> <value>.
// Exit status: 0 ok, 1 not found / error, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"

namespace {

using namespace leveldbpp;

void Usage() {
  std::fprintf(stderr,
               "usage: leveldbpp_client [--host=H] [--port=P]\n"
               "    [--deadline-ms=N] [--retries=N] [--allow-degraded]\n"
               "    COMMAND ...\n"
               "  ping | put K JSON | get K | del K |\n"
               "  lookup ATTR VALUE [K] | range ATTR LO HI [K] |\n"
               "  stats | health\n");
}

void PrintResults(const std::vector<QueryResult>& results) {
  for (const QueryResult& r : results) {
    std::printf("%llu %s %s\n", static_cast<unsigned long long>(r.seq),
                r.primary_key.c_str(), r.value.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  uint64_t deadline_ms = 0;
  int retries = -1;  // -1: keep the client's default policy
  bool allow_degraded = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) host = arg.substr(7);
    else if (arg.rfind("--port=", 0) == 0) port = std::atoi(arg.c_str() + 7);
    else if (arg.rfind("--deadline-ms=", 0) == 0)
      deadline_ms = std::strtoull(arg.c_str() + 14, nullptr, 10);
    else if (arg.rfind("--retries=", 0) == 0)
      retries = std::atoi(arg.c_str() + 10);
    else if (arg == "--allow-degraded") allow_degraded = true;
    else if (arg == "--help" || arg == "-h") { Usage(); return 0; }
    else args.push_back(arg);
  }
  if (args.empty() || port == 0) {
    Usage();
    return 2;
  }

  std::unique_ptr<Client> client;
  Status s = Client::Connect(host, port, &client);
  if (!s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (deadline_ms > 0) client->set_default_deadline_micros(deadline_ms * 1000);
  if (retries >= 0) {
    RetryPolicy policy;
    policy.max_retries = retries;
    client->set_retry_policy(policy);
  }
  client->set_allow_degraded(allow_degraded);

  const std::string& cmd = args[0];
  if (cmd == "ping" && args.size() == 1) {
    s = client->Ping();
    if (s.ok()) std::printf("pong\n");
  } else if (cmd == "put" && args.size() == 3) {
    s = client->Put(args[1], args[2]);
  } else if (cmd == "get" && args.size() == 2) {
    std::string value;
    s = client->Get(args[1], &value);
    if (s.ok()) std::printf("%s\n", value.c_str());
  } else if (cmd == "del" && args.size() == 2) {
    s = client->Delete(args[1]);
  } else if (cmd == "lookup" && (args.size() == 3 || args.size() == 4)) {
    const uint32_t k = args.size() == 4 ? std::atoi(args[3].c_str()) : 0;
    std::vector<QueryResult> results;
    s = client->Lookup(args[1], args[2], k, &results);
    if (s.ok()) PrintResults(results);
  } else if (cmd == "range" && (args.size() == 4 || args.size() == 5)) {
    const uint32_t k = args.size() == 5 ? std::atoi(args[4].c_str()) : 0;
    std::vector<QueryResult> results;
    s = client->RangeLookup(args[1], args[2], args[3], k, &results);
    if (s.ok()) PrintResults(results);
  } else if (cmd == "stats" && args.size() == 1) {
    std::string json;
    s = client->Stats(&json);
    if (s.ok()) std::printf("%s\n", json.c_str());
  } else if (cmd == "health" && args.size() == 1) {
    std::string json;
    s = client->Health(&json);
    if (s.ok()) std::printf("%s\n", json.c_str());
  } else {
    Usage();
    return 2;
  }

  if (client->last_degraded()) {
    std::fprintf(stderr,
                 "warning: DEGRADED answer (%u shard%s missing)\n",
                 client->last_missing_shards(),
                 client->last_missing_shards() == 1 ? "" : "s");
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
