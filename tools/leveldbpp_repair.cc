// leveldbpp_repair: offline salvage of a damaged store.
//
// Two layouts are understood:
//
//   * A SecondaryDB store (directory containing `primary/`): the primary
//     table is repaired, the stand-alone index tables (if the type has any)
//     are dropped and rebuilt from the repaired primary, and the rebuilt
//     indexes are verified against it.
//
//       leveldbpp_repair --type=lazy --attrs=UserID,CreationTime <path>
//
//   * A bare engine directory (CURRENT/MANIFEST/*.ldb): plain RepairDB.
//
//       leveldbpp_repair <path>
//
// Exit status 0 iff the store opens and verifies after repair. Salvage and
// drop counts are printed from the engine's own tickers.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/secondary_db.h"
#include "db/db.h"
#include "env/env.h"
#include "env/statistics.h"

namespace {

using namespace leveldbpp;

void Usage() {
  std::fprintf(stderr,
               "usage: leveldbpp_repair [--type=noindex|embedded|lazy|eager|"
               "composite]\n"
               "                        [--attrs=A,B,...] <path>\n"
               "  --type / --attrs describe a SecondaryDB store; without\n"
               "  them the path is repaired as a bare engine directory.\n");
}

bool ParseIndexType(const std::string& name, IndexType* type) {
  if (name == "noindex") *type = IndexType::kNoIndex;
  else if (name == "embedded") *type = IndexType::kEmbedded;
  else if (name == "lazy") *type = IndexType::kLazy;
  else if (name == "eager") *type = IndexType::kEager;
  else if (name == "composite") *type = IndexType::kComposite;
  else return false;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void PrintRepairCounters(const Statistics& stats) {
  std::printf("tables salvaged: %llu\n",
              static_cast<unsigned long long>(stats.Get(kRepairTablesSalvaged)));
  std::printf("tables dropped:  %llu\n",
              static_cast<unsigned long long>(stats.Get(kRepairTablesDropped)));
}

int RepairBare(const std::string& path) {
  Statistics stats;
  Options options;
  options.statistics = &stats;
  Status s = RepairDB(path, options);
  if (!s.ok()) {
    std::fprintf(stderr, "repair failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintRepairCounters(stats);
  DB* db = nullptr;
  options.create_if_missing = false;
  s = DB::Open(options, path, &db);
  delete db;
  if (!s.ok()) {
    std::fprintf(stderr, "store does not open after repair: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("store opens cleanly\n");
  return 0;
}

int RepairSecondary(const std::string& path, IndexType type,
                    const std::vector<std::string>& attrs) {
  Statistics stats;
  SecondaryDBOptions options;
  options.base.statistics = &stats;
  options.index_type = type;
  options.indexed_attributes = attrs;

  Status s = SecondaryDB::Repair(options, path);
  if (!s.ok()) {
    std::fprintf(stderr, "repair failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintRepairCounters(stats);

  std::unique_ptr<SecondaryDB> db;
  s = SecondaryDB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "store does not open after repair: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  s = db->RebuildIndex();
  if (!s.ok()) {
    std::fprintf(stderr, "index rebuild failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("index entries rebuilt: %llu\n",
              static_cast<unsigned long long>(stats.Get(kIndexRebuildEntries)));
  s = db->VerifyIndexConsistency();
  if (!s.ok()) {
    std::fprintf(stderr, "index verification failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("indexes verified against primary\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string type_name;
  std::vector<std::string> attrs;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--type=", 0) == 0) {
      type_name = arg.substr(strlen("--type="));
    } else if (arg.rfind("--attrs=", 0) == 0) {
      attrs = SplitCommas(arg.substr(strlen("--attrs=")));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  if (type_name.empty() && attrs.empty()) {
    return RepairBare(path);
  }
  IndexType type = IndexType::kEmbedded;
  if (!type_name.empty() && !ParseIndexType(type_name, &type)) {
    std::fprintf(stderr, "unknown index type: %s\n", type_name.c_str());
    return 2;
  }
  return RepairSecondary(path, type, attrs);
}
