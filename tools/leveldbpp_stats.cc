// leveldbpp_stats: offline inspection of a store's metrics and traces.
//
// Two modes:
//
//   * Store mode — open an existing store (read path only; the store is
//     never created or modified beyond normal open-time recovery) with a
//     fresh Statistics object attached, then print the level summary and
//     the engine's stats property. Tickers and histograms reflect the
//     activity performed by the open itself (recovery reads, etc.);
//     long-running counters live in the owning process, not on disk.
//
//       leveldbpp_stats --db=PATH [--json]
//       leveldbpp_stats --db=PATH --type=lazy --attrs=UserID [--json]
//
//     With --type/--attrs the path is opened as a SecondaryDB store
//     (directory containing `primary/`); otherwise as a bare engine
//     directory. --json prints the machine-readable
//     "leveldbpp.stats.json" property instead of the text form.
//
//   * Trace mode — parse a JSONL trace produced by TraceWriter and print a
//     per-event summary (counts, total micros, total bytes). --json emits
//     the summary as one JSON object. Exit status 1 if any line fails to
//     parse.
//
//       leveldbpp_stats --trace=FILE [--json]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/secondary_db.h"
#include "db/db.h"
#include "env/env.h"
#include "env/statistics.h"
#include "json/json.h"

namespace {

using namespace leveldbpp;

void Usage() {
  std::fprintf(
      stderr,
      "usage: leveldbpp_stats --db=PATH [--type=noindex|embedded|lazy|eager|"
      "composite]\n"
      "                       [--attrs=A,B,...] [--json]\n"
      "       leveldbpp_stats --trace=FILE [--json]\n"
      "  --db     open an existing store and print levels + stats\n"
      "  --trace  summarize a JSONL trace written by TraceWriter\n"
      "  --json   machine-readable output\n");
}

bool ParseIndexType(const std::string& name, IndexType* type) {
  if (name == "noindex") *type = IndexType::kNoIndex;
  else if (name == "embedded") *type = IndexType::kEmbedded;
  else if (name == "lazy") *type = IndexType::kLazy;
  else if (name == "eager") *type = IndexType::kEager;
  else if (name == "composite") *type = IndexType::kComposite;
  else return false;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void PrintProperties(DB* db, bool as_json) {
  std::string value;
  if (as_json) {
    if (db->GetProperty("leveldbpp.stats.json", &value)) {
      std::printf("%s\n", value.c_str());
    }
    return;
  }
  if (db->GetProperty("leveldbpp.levels", &value)) {
    std::printf("levels: %s\n", value.c_str());
  }
  if (db->GetProperty("leveldbpp.total-bytes", &value)) {
    std::printf("total bytes: %s\n", value.c_str());
  }
  if (db->GetProperty("leveldbpp.sstables", &value)) {
    std::printf("sstables:\n%s", value.c_str());
  }
  if (db->GetProperty("leveldbpp.stats", &value)) {
    std::printf("stats (activity since open):\n%s", value.c_str());
  }
}

int StatsBare(const std::string& path, bool as_json) {
  Statistics stats;
  Options options;
  options.statistics = &stats;
  options.create_if_missing = false;
  DB* db = nullptr;
  Status s = DB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintProperties(db, as_json);
  delete db;
  return 0;
}

int StatsSecondary(const std::string& path, IndexType type,
                   const std::vector<std::string>& attrs, bool as_json) {
  Statistics stats;
  SecondaryDBOptions options;
  options.base.statistics = &stats;
  options.base.create_if_missing = false;
  options.index_type = type;
  options.indexed_attributes = attrs;
  std::unique_ptr<SecondaryDB> db;
  Status s = SecondaryDB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // The primary's property strings; stand-alone index tables keep their own
  // Statistics, already folded into TotalTicker-based reporting elsewhere.
  PrintProperties(db->primary(), as_json);
  return 0;
}

struct EventSummary {
  uint64_t count = 0;
  uint64_t micros = 0;
  uint64_t bytes = 0;
};

int SummarizeTrace(const std::string& path, bool as_json) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace: %s\n", path.c_str());
    return 1;
  }
  std::map<std::string, EventSummary> events;
  uint64_t lines = 0, bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lines++;
    json::Value v;
    if (!json::Parse(Slice(line), &v) || !v.is_object() ||
        !v["event"].is_string()) {
      bad++;
      continue;
    }
    EventSummary& e = events[v["event"].as_string()];
    e.count++;
    if (v["micros"].is_number()) e.micros += v["micros"].as_int();
    // Byte-ish payload fields, per event type.
    for (const char* field : {"bytes", "bytes_written", "file_size"}) {
      if (v[field].is_number()) e.bytes += v[field].as_int();
    }
  }
  if (as_json) {
    json::Object root;
    root["lines"] = json::Value(static_cast<int64_t>(lines));
    root["malformed"] = json::Value(static_cast<int64_t>(bad));
    json::Object by_event;
    for (const auto& kv : events) {
      json::Object e;
      e["count"] = json::Value(static_cast<int64_t>(kv.second.count));
      e["micros"] = json::Value(static_cast<int64_t>(kv.second.micros));
      e["bytes"] = json::Value(static_cast<int64_t>(kv.second.bytes));
      by_event[kv.first] = json::Value(std::move(e));
    }
    root["events"] = json::Value(std::move(by_event));
    std::printf("%s\n", json::Value(std::move(root)).ToString().c_str());
  } else {
    std::printf("%-20s %10s %14s %14s\n", "event", "count", "micros",
                "bytes");
    for (const auto& kv : events) {
      std::printf("%-20s %10llu %14llu %14llu\n", kv.first.c_str(),
                  static_cast<unsigned long long>(kv.second.count),
                  static_cast<unsigned long long>(kv.second.micros),
                  static_cast<unsigned long long>(kv.second.bytes));
    }
    std::printf("%llu lines, %llu malformed\n",
                static_cast<unsigned long long>(lines),
                static_cast<unsigned long long>(bad));
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path, trace_path, type_name;
  std::vector<std::string> attrs;
  bool as_json = false;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--db=", 0) == 0) {
      db_path = arg.substr(strlen("--db="));
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(strlen("--trace="));
    } else if (arg.rfind("--type=", 0) == 0) {
      type_name = arg.substr(strlen("--type="));
    } else if (arg.rfind("--attrs=", 0) == 0) {
      attrs = SplitCommas(arg.substr(strlen("--attrs=")));
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (!trace_path.empty()) {
    return SummarizeTrace(trace_path, as_json);
  }
  if (db_path.empty()) {
    Usage();
    return 2;
  }
  if (type_name.empty() && attrs.empty()) {
    return StatsBare(db_path, as_json);
  }
  IndexType type = IndexType::kEmbedded;
  if (!type_name.empty() && !ParseIndexType(type_name, &type)) {
    std::fprintf(stderr, "unknown index type: %s\n", type_name.c_str());
    return 2;
  }
  return StatsSecondary(db_path, type, attrs, as_json);
}
