// leveldbpp_ingest: bulk-load a sorted key-value feed into a store as
// SSTables, bypassing the memtable and the WAL (DB::IngestExternalFiles /
// SecondaryDB::IngestWithIndexes).
//
// Input is read from a file (or stdin with `-`), one record per line:
//
//     <key><TAB><value>
//
// Keys must be strictly increasing; the value is taken verbatim to the end
// of the line (for SecondaryDB stores it must be the JSON document format
// the indexes extract attributes from). Two layouts are understood, exactly
// as in leveldbpp_repair:
//
//   * A SecondaryDB store, with every index brought along:
//
//       leveldbpp_ingest --type=lazy --attrs=UserID,CreationTime <path> <feed>
//
//   * A bare engine directory:
//
//       leveldbpp_ingest <path> <feed>
//
// Exit status 0 iff the whole feed was ingested (the splice is atomic: on
// any failure the store is left exactly as it was).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/secondary_db.h"
#include "db/db_impl.h"
#include "env/env.h"
#include "env/statistics.h"

namespace {

using namespace leveldbpp;

void Usage() {
  std::fprintf(stderr,
               "usage: leveldbpp_ingest [--type=noindex|embedded|lazy|eager|"
               "composite]\n"
               "                        [--attrs=A,B,...] <path> <feed|->\n"
               "  feed: lines of <key>\\t<value>, keys strictly increasing.\n"
               "  --type / --attrs describe a SecondaryDB store; without\n"
               "  them the path is opened as a bare engine directory.\n");
}

bool ParseIndexType(const std::string& name, IndexType* type) {
  if (name == "noindex") *type = IndexType::kNoIndex;
  else if (name == "embedded") *type = IndexType::kEmbedded;
  else if (name == "lazy") *type = IndexType::kLazy;
  else if (name == "eager") *type = IndexType::kEager;
  else if (name == "composite") *type = IndexType::kComposite;
  else return false;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Streams <key>\t<value> lines off a FILE*; the feed never holds more than
// one record in memory, so arbitrarily large loads work. A malformed line
// must not let the valid prefix slip through (the feed has no error
// channel, and returning false reads as clean end-of-feed), so it re-emits
// the previous key: the engine's strictly-increasing check then rejects the
// whole batch atomically. A malformed FIRST line simply ends an empty feed
// — a no-op ingest.
class LineFeed {
 public:
  explicit LineFeed(std::FILE* f) : f_(f) {}
  ~LineFeed() { std::free(buf_); }

  bool Next(std::string* key, std::string* value) {
    if (bad_) return false;
    ssize_t n;
    while ((n = getline(&buf_, &cap_, f_)) != -1) {
      line_++;
      if (n > 0 && buf_[n - 1] == '\n') n--;
      if (n == 0) continue;  // Skip blank lines
      const char* tab = static_cast<const char*>(memchr(buf_, '\t', n));
      if (tab == nullptr) {
        std::fprintf(stderr, "line %llu: no tab separator\n",
                     static_cast<unsigned long long>(line_));
        bad_ = true;
        if (!have_last_) return false;  // No valid prefix to protect
        *key = last_key_;  // Duplicate key => whole ingest rejected
        value->clear();
        return true;
      }
      key->assign(buf_, tab - buf_);
      value->assign(tab + 1, n - (tab - buf_) - 1);
      last_key_ = *key;
      have_last_ = true;
      return true;
    }
    return false;
  }

  bool bad() const { return bad_; }

 private:
  std::FILE* f_;
  char* buf_ = nullptr;
  size_t cap_ = 0;
  uint64_t line_ = 0;
  bool bad_ = false;
  bool have_last_ = false;
  std::string last_key_;
};

void PrintStats(const IngestStats& stats) {
  std::printf("records ingested: %llu\n",
              static_cast<unsigned long long>(stats.keys));
  std::printf("sstables built:   %llu\n",
              static_cast<unsigned long long>(stats.files));
  std::printf("bytes written:    %llu\n",
              static_cast<unsigned long long>(stats.bytes));
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, feed_path, type_name;
  std::vector<std::string> attrs;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--type=", 0) == 0) {
      type_name = arg.substr(strlen("--type="));
    } else if (arg.rfind("--attrs=", 0) == 0) {
      attrs = SplitCommas(arg.substr(strlen("--attrs=")));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else if (feed_path.empty()) {
      feed_path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty() || feed_path.empty()) {
    Usage();
    return 2;
  }

  std::FILE* in = feed_path == "-" ? stdin : std::fopen(feed_path.c_str(), "r");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot open feed %s\n", feed_path.c_str());
    return 1;
  }
  LineFeed lines(in);
  IngestFeed feed = [&lines](std::string* key, std::string* value) {
    return lines.Next(key, value);
  };

  Status s;
  IngestStats stats;
  if (type_name.empty() && attrs.empty()) {
    Options options;
    options.create_if_missing = true;
    DBImpl* raw = nullptr;
    s = DBImpl::Open(options, path, &raw);
    std::unique_ptr<DBImpl> db(raw);
    if (s.ok()) s = db->IngestExternalFiles(feed, &stats);
  } else {
    IndexType type = IndexType::kEmbedded;
    if (!type_name.empty() && !ParseIndexType(type_name, &type)) {
      std::fprintf(stderr, "unknown index type: %s\n", type_name.c_str());
      return 2;
    }
    SecondaryDBOptions options;
    options.index_type = type;
    options.indexed_attributes = attrs;
    std::unique_ptr<SecondaryDB> db;
    s = SecondaryDB::Open(options, path, &db);
    if (s.ok()) s = db->IngestWithIndexes(feed, &stats);
  }
  if (in != stdin) std::fclose(in);

  if (lines.bad() || !s.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 lines.bad() ? "malformed feed" : s.ToString().c_str());
    std::fprintf(stderr, "the store was not modified\n");
    return 1;
  }
  PrintStats(stats);
  return 0;
}
