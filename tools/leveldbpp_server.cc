// leveldbpp_server: serve a sharded store over the binary protocol.
//
//   leveldbpp_server --db=PATH [--shards=N] [--port=P] [--host=H]
//                    [--type=noindex|embedded|lazy|eager|composite]
//                    [--attrs=A,B,...] [--fanout=N]
//                    [--max-inflight=N] [--max-connections=N]
//                    [--idle-timeout-ms=N] [--no-shed-stalled-writes]
//
// Overload policy (DESIGN.md "Serving robustness"): stalled-shard writes
// are shed with RETRY_LATER by default (--no-shed-stalled-writes parks them
// instead, like an embedded caller); --max-inflight and --max-connections
// bound concurrent work and sockets (0 = unlimited), and --idle-timeout-ms
// reaps silent connections.
//
// Opens (creating if missing) a ShardedDB at PATH with N shards and listens
// on H:P (port 0 = pick an ephemeral port). Prints exactly one line
//
//   listening on <host>:<port>
//
// to stdout once ready — scripts parse it to find an ephemeral port — then
// serves until SIGINT/SIGTERM. Background compaction runs per shard, as a
// server should.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.h"
#include "serve/sharded_db.h"

namespace {

using namespace leveldbpp;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage() {
  std::fprintf(
      stderr,
      "usage: leveldbpp_server --db=PATH [--shards=N] [--port=P] [--host=H]\n"
      "                        [--type=TYPE] [--attrs=A,B,...] [--fanout=N]\n"
      "                        [--max-inflight=N] [--max-connections=N]\n"
      "                        [--idle-timeout-ms=N]\n"
      "                        [--no-shed-stalled-writes]\n");
}

bool ParseIndexType(const std::string& name, IndexType* type) {
  if (name == "noindex") *type = IndexType::kNoIndex;
  else if (name == "embedded") *type = IndexType::kEmbedded;
  else if (name == "lazy") *type = IndexType::kLazy;
  else if (name == "eager") *type = IndexType::kEager;
  else if (name == "composite") *type = IndexType::kComposite;
  else return false;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path, host = "127.0.0.1", type_name = "embedded";
  std::string attrs = "UserID,CreationTime";
  int shards = 4, port = 0, fanout = 0;
  int max_inflight = 0, max_connections = 0;
  uint64_t idle_timeout_ms = 0;
  bool shed_stalled_writes = true;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--db=", 0) == 0) db_path = arg.substr(5);
    else if (arg.rfind("--shards=", 0) == 0) shards = std::atoi(arg.c_str() + 9);
    else if (arg.rfind("--port=", 0) == 0) port = std::atoi(arg.c_str() + 7);
    else if (arg.rfind("--host=", 0) == 0) host = arg.substr(7);
    else if (arg.rfind("--type=", 0) == 0) type_name = arg.substr(7);
    else if (arg.rfind("--attrs=", 0) == 0) attrs = arg.substr(8);
    else if (arg.rfind("--fanout=", 0) == 0) fanout = std::atoi(arg.c_str() + 9);
    else if (arg.rfind("--max-inflight=", 0) == 0)
      max_inflight = std::atoi(arg.c_str() + 15);
    else if (arg.rfind("--max-connections=", 0) == 0)
      max_connections = std::atoi(arg.c_str() + 18);
    else if (arg.rfind("--idle-timeout-ms=", 0) == 0)
      idle_timeout_ms = std::strtoull(arg.c_str() + 18, nullptr, 10);
    else if (arg == "--no-shed-stalled-writes") shed_stalled_writes = false;
    else if (arg == "--help" || arg == "-h") { Usage(); return 0; }
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (db_path.empty()) {
    Usage();
    return 2;
  }

  ShardedDBOptions options;
  options.num_shards = shards;
  options.fanout_parallelism = fanout;
  options.shard.indexed_attributes = SplitCommas(attrs);
  options.shard.base.background_compaction = true;
  if (!ParseIndexType(type_name, &options.shard.index_type)) {
    std::fprintf(stderr, "unknown index type: %s\n", type_name.c_str());
    return 2;
  }

  std::unique_ptr<ShardedDB> db;
  Status s = ShardedDB::Open(options, db_path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  ServerOptions server_options;
  server_options.host = host;
  server_options.port = port;
  server_options.shed_stalled_writes = shed_stalled_writes;
  server_options.max_inflight_requests = max_inflight;
  server_options.max_connections = max_connections;
  server_options.idle_timeout_micros = idle_timeout_ms * 1000;
  std::unique_ptr<Server> server;
  s = Server::Start(db.get(), server_options, &server);
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("listening on %s:%d\n", host.c_str(), server->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    Env::Posix()->SleepForMicroseconds(100 * 1000);
  }

  server->Stop();
  std::fprintf(stderr, "shut down\n");
  return 0;
}
